#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace cubetree {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void InitLogLevelFromEnv() {
  const char* value = std::getenv("CUBETREE_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return;
  std::string lower(value);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (lower == "info") {
    SetLogLevel(LogLevel::kInfo);
  } else if (lower == "warn" || lower == "warning") {
    SetLogLevel(LogLevel::kWarn);
  } else if (lower == "error") {
    SetLogLevel(LogLevel::kError);
  } else {
    CT_LOG(Warn) << "CUBETREE_LOG_LEVEL=" << value
                 << " not recognized (want debug|info|warn|error); keeping "
                 << LevelName(GetLogLevel());
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal

}  // namespace cubetree
