#include "common/status.h"

namespace cubetree {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kStorageFull:
      return "StorageFull";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace cubetree
