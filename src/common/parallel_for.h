#ifndef CUBETREE_COMMON_PARALLEL_FOR_H_
#define CUBETREE_COMMON_PARALLEL_FOR_H_

#include <atomic>
#include <cstddef>
#include <functional>

#include "common/status.h"

namespace cubetree {

/// Cooperative cancellation flag shared by the tasks of one ParallelFor
/// call. The first task to fail sets it; long-running sibling tasks are
/// expected to poll `cancelled()` at convenient points and bail out with
/// Status::Cancelled, so one worker's StorageFull does not leave the other
/// workers packing trees that will be thrown away anyway.
class CancelFlag {
 public:
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resolves the refresh worker-pool width: CUBETREE_REFRESH_THREADS when
/// set to a positive integer, else std::thread::hardware_concurrency()
/// (itself floored at 1), both clamped to 64.
unsigned RefreshThreadsFromEnv();

/// Runs fn(task_index, cancel) for every index in [0, num_tasks) on a
/// bounded pool of at most `threads` worker threads, dispatching indices
/// dynamically (an atomic counter, so short tasks backfill behind long
/// ones). Returns the first non-OK status, after all workers have
/// quiesced; the flag is cancelled on first error so siblings can stop
/// early, and no new task starts once it is set.
///
/// With threads <= 1 (or a single task) fn runs inline on the caller's
/// thread. Otherwise the caller only coordinates — it never runs tasks
/// itself — so fn may rely on being off the calling thread (e.g. to adopt
/// the caller's trace into a per-worker child trace).
///
/// If fn throws, the first exception is captured and rethrown on the
/// calling thread after the pool has been joined (fault-injected `throw`
/// actions keep their crash-test semantics); siblings are cancelled just
/// as for an error status.
Status ParallelFor(size_t num_tasks, unsigned threads,
                   const std::function<Status(size_t, CancelFlag*)>& fn);

}  // namespace cubetree

#endif  // CUBETREE_COMMON_PARALLEL_FOR_H_
