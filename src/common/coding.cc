#include "common/coding.h"

namespace cubetree {

size_t EncodeVarint32(char* dst, uint32_t value) {
  uint8_t* ptr = reinterpret_cast<uint8_t*>(dst);
  size_t n = 0;
  while (value >= 0x80) {
    ptr[n++] = static_cast<uint8_t>(value | 0x80);
    value >>= 7;
  }
  ptr[n++] = static_cast<uint8_t>(value);
  return n;
}

void PutVarint32(std::string* dst, uint32_t value) {
  char buf[5];
  size_t n = EncodeVarint32(buf, value);
  dst->append(buf, n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  uint8_t* ptr = reinterpret_cast<uint8_t*>(buf);
  size_t n = 0;
  while (value >= 0x80) {
    ptr[n++] = static_cast<uint8_t>(value | 0x80);
    value >>= 7;
  }
  ptr[n++] = static_cast<uint8_t>(value);
  dst->append(buf, n);
}

const char* GetVarint32(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<uint8_t>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<uint8_t>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

size_t VarintLength32(uint32_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace cubetree
