#include "common/assert.h"

#include <cstdio>
#include <cstdlib>

namespace cubetree {
namespace internal {

AssertionFailure::AssertionFailure(const char* expr, const char* file,
                                   int line)
    : expr_(expr), file_(file), line_(line) {}

AssertionFailure::~AssertionFailure() {
  const std::string msg = stream_.str();
  std::fprintf(stderr, "[%s:%d] CT_ASSERT failed: %s%s%s\n", file_, line_,
               expr_, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cubetree
