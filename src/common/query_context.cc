#include "common/query_context.h"

namespace cubetree {

namespace {
thread_local const QueryContext* t_current = nullptr;
}  // namespace

const QueryContext* QueryContext::Current() { return t_current; }

QueryContext::Scope::Scope(const QueryContext* ctx) : previous_(t_current) {
  t_current = ctx;
}

QueryContext::Scope::~Scope() { t_current = previous_; }

}  // namespace cubetree
