#ifndef CUBETREE_COMMON_CODING_H_
#define CUBETREE_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace cubetree {

// Little-endian fixed-width encoding helpers for on-page layouts. All
// persistent structures in the library serialize integers through these so
// page images are byte-stable across platforms.

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

/// Appends `value` to `dst` as a LEB128 varint (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);

/// Appends `value` to `dst` as a LEB128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Encodes `value` as a varint into `dst` (which must have >= 5 bytes of
/// room) and returns the number of bytes written.
size_t EncodeVarint32(char* dst, uint32_t value);

/// Decodes a varint32 from [p, limit). On success stores it in *value and
/// returns the first byte past the encoding; returns nullptr on malformed or
/// truncated input.
const char* GetVarint32(const char* p, const char* limit, uint32_t* value);

/// Decodes a varint64 from [p, limit); same contract as GetVarint32.
const char* GetVarint64(const char* p, const char* limit, uint64_t* value);

/// Number of bytes PutVarint32 would append for `value`.
size_t VarintLength32(uint32_t value);

/// Encodes a signed 64-bit value with zigzag so small magnitudes (positive or
/// negative) stay short; used for aggregate deltas.
inline uint64_t ZigZagEncode64(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

inline int64_t ZigZagDecode64(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

}  // namespace cubetree

#endif  // CUBETREE_COMMON_CODING_H_
