#ifndef CUBETREE_COMMON_STATUS_H_
#define CUBETREE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace cubetree {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention: library code reports failures through Status values instead of
/// exceptions, so every fallible call site is visible in the source.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kCorruption = 4,
  kNotSupported = 5,
  kAlreadyExists = 6,
  kResourceExhausted = 7,
  kInternal = 8,
  /// The target exists but is temporarily out of service (e.g. a
  /// quarantined Cubetree awaiting rebuild) — retry after repair.
  kUnavailable = 9,
  /// The caller abandoned the operation via its QueryContext token.
  kCancelled = 10,
  /// The operation's deadline expired before it completed.
  kDeadlineExceeded = 11,
  /// The underlying volume is out of space (ENOSPC/EDQUOT or a short
  /// write): distinct from kIOError because nothing is broken — the
  /// operation will succeed once space is reclaimed, so it is retriable.
  kStorageFull = 12,
};

/// A Status is either OK (cheap, no allocation) or an error code plus a
/// human-readable message describing what failed.
///
/// The class itself is [[nodiscard]]: every function returning a Status
/// forces its caller to consume the result, so an error can never be
/// dropped silently. A call site that genuinely cannot act on a failure
/// (a destructor, a best-effort cleanup path) must say so with an
/// explicit `(void)` cast next to a comment explaining why dropping is
/// safe.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(StatusCode::kCancelled, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status StorageFull(std::string_view msg) {
    return Status(StatusCode::kStorageFull, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsStorageFull() const { return code_ == StatusCode::kStorageFull; }

  /// True for failures a caller may reasonably retry as-is: transient I/O
  /// errors, temporary unavailability (quarantine pending rebuild), and
  /// resource exhaustion (admission queue full, memory budget denied), and
  /// a full disk (space frees up as epochs are reclaimed or the operator
  /// intervenes). A DeadlineExceeded or Cancelled status is the *caller's*
  /// verdict, not a transient server condition, so it is deliberately not
  /// retriable here.
  bool IsRetriable() const {
    return code_ == StatusCode::kIOError ||
           code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kStorageFull;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code), msg_(msg) {}

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// Evaluates an expression returning Status and propagates any error to the
/// caller. Usage: CT_RETURN_NOT_OK(file.Write(...));
#define CT_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::cubetree::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace cubetree

#endif  // CUBETREE_COMMON_STATUS_H_
