#ifndef CUBETREE_COMMON_RESULT_H_
#define CUBETREE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/assert.h"
#include "common/status.h"

namespace cubetree {

/// Result<T> carries either a value of type T or an error Status. It is the
/// value-returning companion of Status: functions that can fail but also
/// produce a value return Result<T>. Like Status it is [[nodiscard]] —
/// dropping a Result drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CT_DCHECK(!status_.ok()) << "Result built from an OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CT_DCHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CT_DCHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CT_DCHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates an expression returning Result<T>, propagates errors, and binds
/// the value to `lhs` on success.
#define CT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define CT_ASSIGN_OR_RETURN(lhs, expr) \
  CT_ASSIGN_OR_RETURN_IMPL(CT_CONCAT_(_res_, __LINE__), lhs, expr)

#define CT_CONCAT_INNER_(a, b) a##b
#define CT_CONCAT_(a, b) CT_CONCAT_INNER_(a, b)

}  // namespace cubetree

#endif  // CUBETREE_COMMON_RESULT_H_
