#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <nmmintrin.h>
#define CUBETREE_CRC32C_X86 1
#endif

namespace cubetree {

namespace {

// Slice-by-8 software CRC-32C. With verify-on-read checksumming every
// physical page read this sits on the storage hot path, so the classic
// byte-at-a-time loop (a few hundred MB/s) is not enough: eight parallel
// table lookups per 8-byte word break the serial dependency chain and run
// several times faster. The SSE4.2 CRC32 instruction (detected at runtime
// below) is faster still and is used whenever the CPU has it.
constexpr uint32_t kCrc32cPoly = 0x82F63B78u;

using Crc32cTables = std::array<std::array<uint32_t, 256>, 8>;

constexpr Crc32cTables MakeTables() {
  Crc32cTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      crc = tables[0][crc & 0xFF] ^ (crc >> 8);
      tables[t][i] = crc;
    }
  }
  return tables;
}

constexpr Crc32cTables kTables = MakeTables();

uint32_t Crc32cSoftware(const unsigned char* p, size_t n, uint32_t crc) {
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = kTables[7][word & 0xFF] ^ kTables[6][(word >> 8) & 0xFF] ^
          kTables[5][(word >> 16) & 0xFF] ^ kTables[4][(word >> 24) & 0xFF] ^
          kTables[3][(word >> 32) & 0xFF] ^ kTables[2][(word >> 40) & 0xFF] ^
          kTables[1][(word >> 48) & 0xFF] ^ kTables[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#ifdef CUBETREE_CRC32C_X86

bool CpuHasSse42() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ecx & bit_SSE4_2) != 0;
}

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    const unsigned char* p, size_t n, uint32_t crc) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

#endif  // CUBETREE_CRC32C_X86

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const uint32_t crc = ~seed;
#ifdef CUBETREE_CRC32C_X86
  static const bool use_hardware = CpuHasSse42();
  if (use_hardware) return ~Crc32cHardware(p, n, crc);
#endif
  return ~Crc32cSoftware(p, n, crc);
}

}  // namespace cubetree
