#include "common/crc32.h"

#include <array>

namespace cubetree {

namespace {

// Table-driven byte-at-a-time CRC-32C. The table is built at compile time
// from the reflected polynomial; good for a few hundred MB/s, which is far
// above what the page-sized inputs here need.
constexpr uint32_t kCrc32cPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace cubetree
