#ifndef CUBETREE_COMMON_MEMORY_BUDGET_H_
#define CUBETREE_COMMON_MEMORY_BUDGET_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cubetree {

/// Process-wide memory accounting shared by every component that sizes its
/// working set at runtime — today the buffer pool (page frames) and the
/// external sorter (in-memory run buffers). The budget never blocks and
/// never over-commits: a reservation either succeeds immediately or the
/// caller gets ResourceExhausted with a retry-after hint, so overload turns
/// into graceful degradation (sorters spill earlier, queries are rejected
/// retriably) instead of an OOM kill.
///
/// Thread-safe; all operations take one short mutex hold.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// All-or-nothing reservation. `who` names the component for the error
  /// message. On denial returns ResourceExhausted (IsRetriable()).
  Status TryReserve(uint64_t bytes, const char* who) EXCLUDES(mu_);

  /// Best-effort reservation: grants min(want_bytes, available) as long as
  /// at least `min_bytes` can be had, else ResourceExhausted. Lets the
  /// sorter shrink its run buffer under pressure rather than fail.
  Result<uint64_t> ReserveUpTo(uint64_t min_bytes, uint64_t want_bytes,
                               const char* who) EXCLUDES(mu_);

  /// Returns `bytes` to the pool. Releasing more than reserved is a bug;
  /// the counter saturates at zero rather than wrapping.
  void Release(uint64_t bytes) EXCLUDES(mu_);

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const EXCLUDES(mu_);
  uint64_t available() const EXCLUDES(mu_);

 private:
  Status Exhausted(uint64_t requested, uint64_t used_now,
                   const char* who) const;

  const uint64_t capacity_;
  mutable Mutex mu_;
  uint64_t used_ GUARDED_BY(mu_) = 0;
};

/// RAII handle for a budget reservation; releases on destruction. Empty
/// (default-constructed or moved-from) handles release nothing, so the
/// budget pointer may be null throughout for unbudgeted configurations.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryBudget* budget, uint64_t bytes)
      : budget_(budget), bytes_(bytes) {}
  ~MemoryReservation() { Reset(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  void Reset() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace cubetree

#endif  // CUBETREE_COMMON_MEMORY_BUDGET_H_
