#ifndef CUBETREE_COMMON_QUERY_CONTEXT_H_
#define CUBETREE_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace cubetree {

/// Per-query session state: an optional wall-clock deadline plus a
/// cancellation token another thread may trip at any time. A QueryContext is
/// created by the caller of CubetreeEngine::Execute and consulted deep in
/// the storage layer at page-read granularity, so a query over a cold
/// multi-gigabyte tree aborts within one page read of its deadline instead
/// of hanging until the scan completes.
///
/// Thread-safety: Cancel() and Check() may race freely (the token is one
/// atomic). The object must outlive every operation running under it.
///
/// Propagation uses an ambient thread-local rather than threading a context
/// parameter through every storage signature: the engine installs the
/// context with a QueryContext::Scope for the duration of Execute, and
/// BufferPool::Fetch / PageManager::ReadPage consult Current(). Code that
/// runs without a scope (loads, refresh builds, tools) sees Current() ==
/// nullptr and pays nothing but one thread-local load.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline; cancellable only.
  QueryContext() = default;

  /// Movable so the WithTimeout/WithDeadline factories compose; moving a
  /// context other threads already observe is a caller bug (the factories
  /// move before the context is shared).
  QueryContext(QueryContext&& other) noexcept
      : deadline_(other.deadline_),
        has_deadline_(other.has_deadline_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)),
        trace_id_(other.trace_id_.load(std::memory_order_relaxed)) {}
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;
  QueryContext& operator=(QueryContext&&) = delete;

  /// Expires `timeout` from now. A zero or negative timeout is already
  /// expired — useful in tests.
  static QueryContext WithTimeout(std::chrono::nanoseconds timeout) {
    QueryContext ctx;
    ctx.deadline_ = Clock::now() + timeout;
    ctx.has_deadline_ = true;
    return ctx;
  }

  static QueryContext WithDeadline(Clock::time_point deadline) {
    QueryContext ctx;
    ctx.deadline_ = deadline;
    ctx.has_deadline_ = true;
    return ctx;
  }

  /// Trips the cancellation token. Safe from any thread; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// OK while the query may keep running; Cancelled or DeadlineExceeded
  /// once it must stop. Cancellation wins ties: an explicit Cancel is the
  /// caller's own verdict and reads better in logs than a coincidentally
  /// expired deadline.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  /// Id of the trace observing this query (0 = untraced). Stamped by the
  /// engine when a TraceScope starts, so callers holding the context can
  /// correlate their results with the exported trace. Mutable-through-const
  /// like cancellation: engines receive `const QueryContext*`, and the id
  /// is observability metadata, not query semantics.
  void set_trace_id(uint64_t id) const {
    trace_id_.store(id, std::memory_order_relaxed);
  }
  uint64_t trace_id() const {
    return trace_id_.load(std::memory_order_relaxed);
  }

  /// The ambient context for this thread, or nullptr outside any Scope.
  static const QueryContext* Current();

  /// RAII installer for the ambient context. Nesting restores the previous
  /// context on destruction, so a query running inside another query's
  /// scope (not expected, but harmless) unwinds correctly.
  class Scope {
   public:
    explicit Scope(const QueryContext* ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const QueryContext* previous_;
  };

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<uint64_t> trace_id_{0};
};

}  // namespace cubetree

#endif  // CUBETREE_COMMON_QUERY_CONTEXT_H_
