#include "common/memory_budget.h"

namespace cubetree {

Status MemoryBudget::Exhausted(uint64_t requested, uint64_t used_now,
                               const char* who) const {
  // The hint scales with how over-subscribed the pool is: a nearly idle
  // budget suggests an immediate retry, a saturated one backs callers off
  // long enough for a sorter run or a batch of frames to drain.
  const uint64_t pressure_pct =
      capacity_ == 0 ? 100 : (used_now * 100) / capacity_;
  const uint64_t retry_after_ms = 10 + pressure_pct;
  return Status::ResourceExhausted(
      "memory budget exhausted: " + std::string(who) + " requested " +
      std::to_string(requested) + " bytes, " +
      std::to_string(capacity_ - used_now) + " of " +
      std::to_string(capacity_) + " available; retry-after-ms=" +
      std::to_string(retry_after_ms));
}

Status MemoryBudget::TryReserve(uint64_t bytes, const char* who) {
  MutexLock lock(mu_);
  if (bytes > capacity_ - used_) return Exhausted(bytes, used_, who);
  used_ += bytes;
  return Status::OK();
}

Result<uint64_t> MemoryBudget::ReserveUpTo(uint64_t min_bytes,
                                           uint64_t want_bytes,
                                           const char* who) {
  MutexLock lock(mu_);
  const uint64_t free = capacity_ - used_;
  if (free < min_bytes) return Exhausted(min_bytes, used_, who);
  const uint64_t granted = want_bytes < free ? want_bytes : free;
  used_ += granted;
  return granted;
}

void MemoryBudget::Release(uint64_t bytes) {
  MutexLock lock(mu_);
  used_ = bytes > used_ ? 0 : used_ - bytes;
}

uint64_t MemoryBudget::used() const {
  MutexLock lock(mu_);
  return used_;
}

uint64_t MemoryBudget::available() const {
  MutexLock lock(mu_);
  return capacity_ - used_;
}

}  // namespace cubetree
