#ifndef CUBETREE_COMMON_CRC32_H_
#define CUBETREE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cubetree {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `n` bytes at `data`. Pass the return value of a previous call as `seed`
/// to extend the checksum over a fragmented buffer:
///
///   uint32_t c = Crc32c(a, na);
///   c = Crc32c(b, nb, c);  // == Crc32c(concat(a, b))
///
/// Used for WAL record framing, per-page verify-on-read and the invariant
/// checkers; chosen over plain CRC-32 because it is the checksum hardware
/// accelerates: on x86-64 with SSE4.2 (runtime-detected) this runs on the
/// CRC32 instruction, elsewhere on a slice-by-8 table implementation.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace cubetree

#endif  // CUBETREE_COMMON_CRC32_H_
