#ifndef CUBETREE_COMMON_CRC32_H_
#define CUBETREE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cubetree {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `n` bytes at `data`. Pass the return value of a previous call as `seed`
/// to extend the checksum over a fragmented buffer:
///
///   uint32_t c = Crc32c(a, na);
///   c = Crc32c(b, nb, c);  // == Crc32c(concat(a, b))
///
/// Used for WAL record framing and by the invariant checkers; chosen over
/// plain CRC-32 because it is the checksum hardware accelerates, should we
/// later swap in the SSE4.2 instruction.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace cubetree

#endif  // CUBETREE_COMMON_CRC32_H_
