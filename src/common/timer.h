#ifndef CUBETREE_COMMON_TIMER_H_
#define CUBETREE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cubetree {

/// Monotonic wall-clock stopwatch used by benchmarks and the warehouse
/// loaders to report elapsed times.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cubetree

#endif  // CUBETREE_COMMON_TIMER_H_
