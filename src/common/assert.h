#ifndef CUBETREE_COMMON_ASSERT_H_
#define CUBETREE_COMMON_ASSERT_H_

#include <sstream>

namespace cubetree {
namespace internal {

/// Collects a stream-formatted message for a failed CT_ASSERT and aborts the
/// process from its destructor (after printing expression, location and
/// message to stderr). Mirrors the LogMessage idiom in common/logging.h.
class AssertionFailure {
 public:
  AssertionFailure(const char* expr, const char* file, int line);
  ~AssertionFailure();  // Prints and calls std::abort().

  AssertionFailure(const AssertionFailure&) = delete;
  AssertionFailure& operator=(const AssertionFailure&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows streamed operands of a compiled-out CT_DCHECK.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace cubetree

/// Always-on invariant check: aborts with a diagnostic when `cond` is false.
/// Additional context can be streamed: CT_ASSERT(n > 0) << "n=" << n;
/// Use for invariants whose violation means memory is already or about to be
/// corrupted; recoverable conditions should return Status instead.
#define CT_ASSERT(cond)                                               \
  if (cond) {                                                         \
  } else /* NOLINT(readability-else-after-return) */                  \
    ::cubetree::internal::AssertionFailure(#cond, __FILE__, __LINE__) \
        .stream()

/// Debug-only invariant check, enabled when NDEBUG is off or when the build
/// defines CUBETREE_DCHECK_ALWAYS (the sanitizer configurations do). In
/// release builds it compiles to nothing and does not evaluate `cond`.
#if !defined(NDEBUG) || defined(CUBETREE_DCHECK_ALWAYS)
#define CT_DCHECK(cond) CT_ASSERT(cond)
#define CT_DCHECK_IS_ON() true
#else
#define CT_DCHECK(cond)                                  \
  if (true) {                                            \
  } else /* NOLINT(readability-else-after-return) */     \
    ::cubetree::internal::NullStream()
#define CT_DCHECK_IS_ON() false
#endif

#endif  // CUBETREE_COMMON_ASSERT_H_
