#include "common/parallel_for.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace cubetree {

unsigned RefreshThreadsFromEnv() {
  constexpr unsigned kMaxThreads = 64;
  if (const char* env = std::getenv("CUBETREE_REFRESH_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<unsigned>(
          std::min<long>(parsed, static_cast<long>(kMaxThreads)));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(std::max(hw, 1u), kMaxThreads);
}

Status ParallelFor(size_t num_tasks, unsigned threads,
                   const std::function<Status(size_t, CancelFlag*)>& fn) {
  if (num_tasks == 0) return Status::OK();
  CancelFlag cancel;
  threads = static_cast<unsigned>(
      std::min<size_t>(std::max(threads, 1u), num_tasks));
  if (threads <= 1) {
    // Inline path: exceptions propagate naturally, errors return directly.
    // The flag still exists so fn can observe a cancellation it requested
    // itself (e.g. a mid-stream failure seen by a wrapped source).
    for (size_t t = 0; t < num_tasks; ++t) {
      if (cancel.cancelled()) break;
      Status st = fn(t, &cancel);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  std::atomic<size_t> next{0};
  Mutex mu;
  Status first_error;             // GUARDED_BY(mu), but locals can't annotate.
  std::exception_ptr first_throw; // Likewise.
  const auto worker = [&]() {
    while (!cancel.cancelled()) {
      const size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= num_tasks) break;
      Status st;
      try {
        st = fn(t, &cancel);
      } catch (...) {
        MutexLock lock(mu);
        if (!first_throw) first_throw = std::current_exception();
        cancel.Cancel();
        break;
      }
      if (!st.ok()) {
        MutexLock lock(mu);
        // Keep the root cause: a sibling's Cancelled must not displace the
        // real error, so only the first failure is recorded. (Cancelled
        // statuses can only be produced after Cancel(), i.e. after some
        // first failure was already latched.)
        if (first_error.ok()) first_error = std::move(st);
        cancel.Cancel();
        break;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();

  if (first_throw) std::rethrow_exception(first_throw);
  return first_error;
}

}  // namespace cubetree
