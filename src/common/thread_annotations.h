#ifndef CUBETREE_COMMON_THREAD_ANNOTATIONS_H_
#define CUBETREE_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang Thread Safety Analysis support: capability attribute macros plus
/// annotated mutex wrappers. Under clang the annotations turn the locking
/// discipline documented in DESIGN.md §12 into compile errors
/// (-Wthread-safety -Werror=thread-safety, wired up in CMakeLists.txt when
/// the compiler is clang); under gcc they expand to nothing and the
/// wrappers cost exactly a std::mutex.
///
/// Usage pattern (see clang.llvm.org/docs/ThreadSafetyAnalysis.html):
///
///   class Account {
///     void Withdraw(int amount) EXCLUDES(mu_) {
///       MutexLock lock(mu_);
///       DebitLocked(amount);
///     }
///    private:
///     void DebitLocked(int amount) REQUIRES(mu_);
///     Mutex mu_;
///     int balance_ GUARDED_BY(mu_);
///   };
///
/// Every mutex in the library must be a wrapper from this header, never a
/// raw std::mutex — enforced by scripts/ct_lint.py (rule `raw-mutex`), so
/// no lock can silently opt out of the analysis.

#if defined(__clang__) && defined(__has_attribute)
#define CT_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define CT_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lockable) type.
#define CAPABILITY(x) CT_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY CT_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// The annotated field may only be accessed while holding the given
/// capability.
#define GUARDED_BY(x) CT_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// The pointee of the annotated pointer field is protected by the given
/// capability (the pointer itself is not).
#define PT_GUARDED_BY(x) CT_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The annotated function acquires the capability and does not release it.
#define ACQUIRE(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases a capability acquired earlier.
#define RELEASE(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

/// The annotated function acquires the capability when it returns the
/// given value.
#define TRY_ACQUIRE(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must hold the capability to call the annotated function
/// (internal helpers that expect the lock held, e.g. *Locked() methods).
#define REQUIRES(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (the function acquires it
/// itself; calling with it held would self-deadlock).
#define EXCLUDES(...) CT_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow).
#define ASSERT_CAPABILITY(x) \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// The annotated function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) CT_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Turns the analysis off for one function. Reserve for deliberate,
/// documented exceptions (e.g. quiesced-read accessors).
#define NO_THREAD_SAFETY_ANALYSIS \
  CT_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace cubetree {

class CondVar;

/// Annotated exclusive mutex. Identical cost to std::mutex; exists so
/// fields can be GUARDED_BY(mu_) and the analysis can prove the guard.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Annotated reader/writer mutex for the read-mostly structures the
/// worker-pool executor will add (ROADMAP item 1). Writer side is a
/// "mutex" capability; readers use ReaderLock / REQUIRES_SHARED.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (the library's std::lock_guard /
/// std::unique_lock). Holds a std::unique_lock internally so CondVar can
/// wait on it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable that waits on a MutexLock. Waiting releases and
/// reacquires the lock internally; from the analysis' point of view the
/// capability is held across the wait, which is sound because it is held
/// both when Wait is called and when it returns.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cubetree

/// The issue-facing alias: docs and examples refer to ct::Mutex etc.
namespace ct = cubetree;

#endif  // CUBETREE_COMMON_THREAD_ANNOTATIONS_H_
