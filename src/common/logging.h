#ifndef CUBETREE_COMMON_LOGGING_H_
#define CUBETREE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace cubetree {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that reaches stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Applies the CUBETREE_LOG_LEVEL environment variable (one of debug, info,
/// warn, error; case-insensitive) if set, so binaries can be made chatty or
/// quiet in the field without a rebuild. Unset or unrecognized values leave
/// the level untouched; unrecognized values also get a WARN line. Called at
/// startup by every example and bench binary.
void InitLogLevelFromEnv();

namespace internal {

/// Stream-style log line; emits to stderr on destruction if `level` passes
/// the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define CT_LOG(level)                                                   \
  ::cubetree::internal::LogMessage(::cubetree::LogLevel::k##level,      \
                                   __FILE__, __LINE__)                  \
      .stream()

}  // namespace cubetree

#endif  // CUBETREE_COMMON_LOGGING_H_
