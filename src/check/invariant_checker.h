#ifndef CUBETREE_CHECK_INVARIANT_CHECKER_H_
#define CUBETREE_CHECK_INVARIANT_CHECKER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace cubetree {

/// Severity of one invariant finding.
enum class Severity : int {
  /// Informational — surfaced in reports, never affects exit status.
  kInfo = 0,
  /// Suspicious but not provably corrupt (e.g. under-filled leaves).
  kWarning = 1,
  /// A structural invariant is violated; the store is corrupt.
  kError = 2,
};

const char* SeverityName(Severity severity);

/// One violated (or noteworthy) invariant, as reported by a checker.
struct Finding {
  Severity severity = Severity::kError;
  /// Component that owns the invariant: "rtree", "forest", "wal",
  /// "bufferpool", "btree".
  std::string component;
  /// Stable machine-readable code, e.g. "pack-order", "mbr-containment".
  std::string code;
  /// Human-readable description of what is wrong.
  std::string message;
  /// Where: file path, page id, view id... Free-form, may be empty.
  std::string context;
};

/// Accumulates findings across checkers. Checkers report as many distinct
/// violations as they can (capped per code so one systemic fault cannot
/// flood the report) instead of stopping at the first.
class CheckReport {
 public:
  /// Per-(component, code) cap on recorded findings; further ones only
  /// bump the suppressed counter.
  static constexpr size_t kMaxFindingsPerCode = 20;

  void Add(Finding finding);
  void AddError(const std::string& component, const std::string& code,
                const std::string& message, const std::string& context = "");
  void AddWarning(const std::string& component, const std::string& code,
                  const std::string& message, const std::string& context = "");
  void AddInfo(const std::string& component, const std::string& code,
               const std::string& message, const std::string& context = "");

  const std::vector<Finding>& findings() const { return findings_; }
  size_t errors() const { return errors_; }
  size_t warnings() const { return warnings_; }
  size_t suppressed() const { return suppressed_; }
  /// True when no error-severity finding was recorded.
  bool clean() const { return errors_ == 0; }

  /// Multi-line human-readable listing ("<SEV> [component/code] message
  /// (context)"), ending with a one-line summary.
  std::string ToString() const;
  /// The whole report as a JSON object (findings array + counts).
  std::string ToJson() const;

 private:
  std::vector<Finding> findings_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
  size_t suppressed_ = 0;
};

/// One pluggable invariant checker (per component or per file). Run()
/// returns non-OK only when the check could not be performed at all (e.g.
/// the target file does not exist); invariant violations are reported as
/// findings, not as an error Status, so one corrupt structure does not
/// mask the rest of the report.
class Checker {
 public:
  virtual ~Checker() = default;
  virtual std::string name() const = 0;
  virtual Status Run(CheckReport* report) = 0;
};

/// Registry-and-driver for a set of checkers: the entry point ctfsck and
/// the tests use. RunAll runs every registered checker against one shared
/// report; a checker that cannot run at all contributes a finding with
/// code "check-failed" (severity error) rather than aborting the sweep.
class InvariantChecker {
 public:
  void Add(std::unique_ptr<Checker> checker);
  size_t num_checkers() const { return checkers_.size(); }

  Status RunAll(CheckReport* report);

 private:
  std::vector<std::unique_ptr<Checker>> checkers_;
};

}  // namespace cubetree

#endif  // CUBETREE_CHECK_INVARIANT_CHECKER_H_
