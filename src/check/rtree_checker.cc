#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "check/checkers.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "rtree/geometry.h"
#include "rtree/node.h"
#include "rtree/packed_rtree.h"
#include "storage/checksum.h"
#include "storage/page_manager.h"

namespace cubetree {

namespace {

constexpr uint32_t kRTreeMagic = 0x43545254;  // Must match packed_rtree.cc.

/// Decoded R-tree metadata page (layout documented in packed_rtree.cc).
struct RTreeMeta {
  uint8_t dims = 0;
  bool compress = false;
  PageId root = kInvalidPageId;
  uint32_t height = 0;
  uint64_t num_points = 0;
  PageId num_leaf_pages = 0;
};

std::string PageContext(const std::string& path, PageId page) {
  return path + " page " + std::to_string(page);
}

}  // namespace

struct RTreeChecker::Impl {
  std::string path;
  CheckOptions options;
  std::function<uint8_t(uint32_t)> view_arity;

  PageManager* file = nullptr;
  RTreeMeta meta;
  CheckReport* report = nullptr;

  void CheckMeta(const Page& page);
  void CheckChecksums();
  void CheckPageRoles();
  /// Recursive containment/reachability walk; fills `visited` and returns
  /// the subtree's actual bounding box in *bounds (false if unreadable).
  bool WalkNode(PageId node_id, uint32_t depth, Rect* bounds,
                std::set<PageId>* visited);
  void CheckLeafScan();

  void Error(const std::string& code, const std::string& message,
             const std::string& context = "") {
    report->AddError("rtree", code, message,
                     context.empty() ? path : context);
  }
  void Warning(const std::string& code, const std::string& message,
               const std::string& context = "") {
    report->AddWarning("rtree", code, message,
                       context.empty() ? path : context);
  }
};

RTreeChecker::RTreeChecker(std::string path, CheckOptions options,
                           std::function<uint8_t(uint32_t)> view_arity)
    : impl_(new Impl{std::move(path), options, std::move(view_arity)}) {}

RTreeChecker::~RTreeChecker() = default;

void RTreeChecker::Impl::CheckMeta(const Page& page) {
  const char* p = page.data;
  meta.dims = static_cast<uint8_t>(p[4]);
  meta.compress = p[5] != 0;
  meta.root = DecodeFixed32(p + 8);
  meta.height = DecodeFixed32(p + 12);
  meta.num_points = DecodeFixed64(p + 16);
  meta.num_leaf_pages = DecodeFixed32(p + 24);

  if (meta.dims == 0 || meta.dims > kMaxDims) {
    Error("meta-dims", "dims " + std::to_string(meta.dims) +
                           " outside [1, " + std::to_string(kMaxDims) + "]");
  }
  if (meta.root == kInvalidPageId) {
    if (meta.num_points != 0) {
      Error("meta-counts", "empty tree (no root) but num_points = " +
                               std::to_string(meta.num_points));
    }
    if (meta.num_leaf_pages != 0) {
      Error("meta-counts", "empty tree (no root) but num_leaf_pages = " +
                               std::to_string(meta.num_leaf_pages));
    }
    return;
  }
  if (meta.root >= file->NumPages()) {
    Error("meta-root", "root page " + std::to_string(meta.root) +
                           " beyond end of file (" +
                           std::to_string(file->NumPages()) + " pages)");
    meta.root = kInvalidPageId;  // Nothing below can walk the tree.
    return;
  }
  if (meta.num_leaf_pages + 1 > file->NumPages()) {
    Error("meta-counts",
          "num_leaf_pages " + std::to_string(meta.num_leaf_pages) +
              " does not fit in a " + std::to_string(file->NumPages()) +
              "-page file");
  }
  // The packed layout writes leaves first, internal levels bottom-up, root
  // last: the root must be the file's final page.
  if (meta.root != file->NumPages() - 1) {
    Error("meta-root", "root page " + std::to_string(meta.root) +
                           " is not the last page of the file");
  }
  if (meta.height == 0) {
    Error("meta-height", "nonempty tree with height 0");
  }
}

void RTreeChecker::Impl::CheckChecksums() {
  // Verify the `.crc` sidecar independently of the PageManager's own
  // verify-on-read (which is deliberately not armed here), so every bad
  // page becomes one finding instead of aborting the structural walk.
  std::vector<uint32_t> table;
  if (Status loaded = LoadChecksumSidecar(path, &table); !loaded.ok()) {
    if (loaded.IsNotFound()) {
      Warning("checksum-missing",
              "no checksum sidecar (" + ChecksumSidecarPath(path) +
                  "): pages are unverifiable, runtime reads go unchecked");
    } else {
      Error("checksum-sidecar",
            "checksum sidecar invalid: " + loaded.ToString());
    }
    return;
  }
  if (table.size() != file->NumPages()) {
    Error("checksum-count",
          "sidecar covers " + std::to_string(table.size()) +
              " pages, file has " + std::to_string(file->NumPages()));
    return;
  }
  Page page;
  for (PageId id = 0; id < file->NumPages(); ++id) {
    if (!file->ReadPage(id, &page).ok()) {
      Error("unreadable-page", "cannot read page while verifying checksums",
            PageContext(path, id));
      return;
    }
    const uint32_t computed = Crc32c(page.data, kPageSize);
    if (computed != table[id]) {
      Error("checksum-mismatch",
            "stored CRC " + std::to_string(table[id]) + " != computed " +
                std::to_string(computed),
            PageContext(path, id));
    }
  }
}

void RTreeChecker::Impl::CheckPageRoles() {
  // Pages 1..num_leaf_pages must be leaves; everything after must be
  // internal. One mislabeled page is enough to report per region.
  Page page;
  for (PageId id = 1; id < file->NumPages(); ++id) {
    if (!file->ReadPage(id, &page).ok()) {
      Error("unreadable-page", "cannot read page", PageContext(path, id));
      return;
    }
    const bool should_be_leaf = id <= meta.num_leaf_pages;
    if (RNodeIsLeaf(page.data) != should_be_leaf) {
      Error("page-role",
            should_be_leaf
                ? "page in the leaf region is not marked as a leaf"
                : "page in the internal region is marked as a leaf",
            PageContext(path, id));
    }
  }
}

bool RTreeChecker::Impl::WalkNode(PageId node_id, uint32_t depth,
                                  Rect* bounds, std::set<PageId>* visited) {
  if (node_id == 0 || node_id >= file->NumPages()) {
    Error("child-pointer", "child pointer " + std::to_string(node_id) +
                               " out of range");
    return false;
  }
  if (!visited->insert(node_id).second) {
    Error("page-shared", "page referenced more than once (cycle or shared "
                         "subtree)",
          PageContext(path, node_id));
    return false;
  }
  if (depth > meta.height) {
    Error("depth", "node deeper than the recorded height " +
                       std::to_string(meta.height),
          PageContext(path, node_id));
    return false;
  }
  Page page;
  if (!file->ReadPage(node_id, &page).ok()) {
    Error("unreadable-page", "cannot read page", PageContext(path, node_id));
    return false;
  }
  const uint16_t count = RNodeCount(page.data);
  if (count == 0) {
    Error("empty-node", "node holds zero entries", PageContext(path, node_id));
    return false;
  }
  if (RNodeIsLeaf(page.data)) {
    if (depth != meta.height) {
      Error("leaf-depth", "leaf at depth " + std::to_string(depth) +
                              ", expected " + std::to_string(meta.height),
            PageContext(path, node_id));
    }
    const uint8_t arity = RNodeArity(page.data);
    const uint32_t view_id = RNodeViewId(page.data);
    if (arity > meta.dims) {
      Error("leaf-arity", "leaf arity " + std::to_string(arity) +
                              " exceeds tree dims " +
                              std::to_string(meta.dims),
            PageContext(path, node_id));
      return false;
    }
    if (count > RLeafCapacity(arity)) {
      Error("leaf-overflow", "leaf count " + std::to_string(count) +
                                 " exceeds capacity " +
                                 std::to_string(RLeafCapacity(arity)),
            PageContext(path, node_id));
      return false;
    }
    const size_t entry_bytes = RLeafEntryBytes(arity);
    PointRecord rec;
    char scratch[kPageSize];
    for (uint16_t i = 0; i < count; ++i) {
      const char* src = page.data + kRNodeHeaderSize + i * entry_bytes;
      RLeafReadEntry(src, arity, view_id, &rec);
      if (options.deep) {
        // Compression round-trip: re-encoding the decoded entry must
        // reproduce the on-page bytes exactly (the implicit-zero
        // suppression is lossless).
        RLeafWriteEntry(scratch, rec.coords, arity, rec.agg);
        if (std::memcmp(scratch, src, entry_bytes) != 0) {
          Error("compression-roundtrip",
                "leaf entry " + std::to_string(i) +
                    " does not survive a decode/re-encode round-trip",
                PageContext(path, node_id));
        }
        if (view_arity) {
          const uint8_t expected = view_arity(view_id);
          for (size_t d = expected; d < meta.dims; ++d) {
            if (rec.coords[d] != 0) {
              Error("zero-suppression",
                    "view " + std::to_string(view_id) +
                        " point has nonzero coordinate " +
                        std::to_string(d) + " beyond its arity " +
                        std::to_string(expected),
                    PageContext(path, node_id));
              break;
            }
          }
        }
      }
      if (i == 0) {
        *bounds = Rect::FromPoint(rec.coords, meta.dims);
      } else {
        bounds->ExpandToPoint(rec.coords, meta.dims);
      }
    }
    return true;
  }
  // Internal node.
  if (node_id <= meta.num_leaf_pages) {
    // Already reported by CheckPageRoles; do not recurse into garbage.
    return false;
  }
  const size_t entry_bytes = RInternalEntryBytes(meta.dims);
  if (count > RInternalCapacity(meta.dims)) {
    Error("internal-overflow", "internal count " + std::to_string(count) +
                                   " exceeds capacity " +
                                   std::to_string(RInternalCapacity(meta.dims)),
          PageContext(path, node_id));
    return false;
  }
  std::vector<std::pair<Rect, PageId>> children;
  children.reserve(count);
  Rect mbr;
  PageId child;
  for (uint16_t i = 0; i < count; ++i) {
    RInternalReadEntry(page.data + kRNodeHeaderSize + i * entry_bytes,
                       meta.dims, &mbr, &child);
    children.emplace_back(mbr, child);
    if (i == 0) {
      *bounds = mbr;
    } else {
      bounds->ExpandToRect(mbr, meta.dims);
    }
  }
  for (const auto& [claimed, child_id] : children) {
    Rect actual;
    if (!WalkNode(child_id, depth + 1, &actual, visited)) continue;
    for (size_t d = 0; d < meta.dims; ++d) {
      if (actual.lo[d] < claimed.lo[d] || actual.hi[d] > claimed.hi[d]) {
        Error("mbr-containment",
              "child " + std::to_string(child_id) +
                  " exceeds its parent MBR in dim " + std::to_string(d),
              PageContext(path, node_id));
        break;
      }
    }
  }
  return true;
}

void RTreeChecker::Impl::CheckLeafScan() {
  // Sequential scan over the leaf region: global pack order, single-view
  // contiguous runs, uniform fill within a run, point-count agreement.
  Page page;
  Coord prev[kMaxDims] = {0};
  bool have_prev = false;
  uint64_t points = 0;
  uint32_t run_view = 0;
  uint16_t run_max_count = 0;
  uint16_t prev_count = 0;
  bool in_run = false;
  std::set<uint32_t> closed_views;
  PointRecord rec;

  auto close_run = [&]() {
    if (in_run) closed_views.insert(run_view);
  };

  for (PageId id = 1; id <= meta.num_leaf_pages && id < file->NumPages();
       ++id) {
    if (!file->ReadPage(id, &page).ok()) {
      Error("unreadable-page", "cannot read leaf page",
            PageContext(path, id));
      return;
    }
    if (!RNodeIsLeaf(page.data)) continue;  // Reported by CheckPageRoles.
    const uint8_t arity = RNodeArity(page.data);
    const uint32_t view_id = RNodeViewId(page.data);
    const uint16_t count = RNodeCount(page.data);
    if (arity > meta.dims || count == 0 || count > RLeafCapacity(arity)) {
      continue;  // Reported by the tree walk.
    }
    if (!in_run || view_id != run_view) {
      close_run();
      if (closed_views.count(view_id) != 0) {
        Error("view-contiguity",
              "view " + std::to_string(view_id) +
                  " leaves are interleaved (run reopened)",
              PageContext(path, id));
      }
      run_view = view_id;
      run_max_count = count;
      in_run = true;
    } else {
      // Packed build invariant: within one view's run every leaf except
      // the last is filled to the run's uniform target.
      if (prev_count < run_max_count) {
        Warning("leaf-fill",
                "under-filled leaf inside view " +
                    std::to_string(view_id) + "'s run (" +
                    std::to_string(prev_count) + " < " +
                    std::to_string(run_max_count) + " entries)",
                PageContext(path, id - 1));
      }
      if (count > run_max_count) run_max_count = count;
    }
    prev_count = count;
    const size_t entry_bytes = RLeafEntryBytes(arity);
    for (uint16_t i = 0; i < count; ++i) {
      RLeafReadEntry(page.data + kRNodeHeaderSize + i * entry_bytes, arity,
                     view_id, &rec);
      if (have_prev &&
          PackOrderCompare(prev, rec.coords, meta.dims) >= 0) {
        Error("pack-order",
              "points not strictly ascending in pack order at leaf entry " +
                  std::to_string(i),
              PageContext(path, id));
      }
      std::memcpy(prev, rec.coords, sizeof(prev));
      have_prev = true;
      ++points;
    }
  }
  if (points != meta.num_points) {
    Error("point-count", "leaf scan found " + std::to_string(points) +
                             " points, metadata records " +
                             std::to_string(meta.num_points));
  }
}

Status RTreeChecker::Run(CheckReport* report) {
  Impl& ctx = *impl_;
  ctx.report = report;
  auto file_result = PageManager::Open(ctx.path);
  if (!file_result.ok()) return file_result.status();
  auto file = std::move(file_result).value();
  ctx.file = file.get();

  if (file->NumPages() == 0) {
    ctx.Error("meta-missing", "file has no pages");
    return Status::OK();
  }
  if (ctx.options.checksums) ctx.CheckChecksums();
  Page meta_page;
  CT_RETURN_NOT_OK(file->ReadPage(0, &meta_page));
  if (DecodeFixed32(meta_page.data) != kRTreeMagic) {
    ctx.Error("meta-magic", "bad magic in metadata page");
    return Status::OK();
  }
  ctx.CheckMeta(meta_page);
  if (ctx.meta.dims == 0 || ctx.meta.dims > kMaxDims) return Status::OK();
  if (ctx.meta.root == kInvalidPageId) return Status::OK();

  ctx.CheckPageRoles();
  if (ctx.options.deep) {
    std::set<PageId> visited;
    Rect bounds;
    ctx.WalkNode(ctx.meta.root, 1, &bounds, &visited);
    // Every leaf page must be reachable from the root.
    for (PageId id = 1;
         id <= ctx.meta.num_leaf_pages && id < file->NumPages(); ++id) {
      if (visited.count(id) == 0) {
        ctx.Error("unreachable-leaf", "leaf page not reachable from the root",
                  PageContext(ctx.path, id));
      }
    }
    ctx.CheckLeafScan();
  }
  return Status::OK();
}

}  // namespace cubetree
