#include "check/checkers.h"

namespace cubetree {

struct BufferPoolChecker::Impl {
  const BufferPool* pool;
};

BufferPoolChecker::BufferPoolChecker(const BufferPool* pool)
    : impl_(new Impl{pool}) {}

BufferPoolChecker::~BufferPoolChecker() = default;

Status BufferPoolChecker::Run(CheckReport* report) {
  if (impl_->pool == nullptr) {
    return Status::InvalidArgument("bufferpool checker: null pool");
  }
  const size_t pinned = impl_->pool->PinnedPages();
  if (pinned > 0) {
    report->AddError(
        "bufferpool", "pin-leak",
        std::to_string(pinned) +
            " frame(s) still pinned — a PageHandle was leaked and would "
            "dangle at pool shutdown");
  }
  return Status::OK();
}

}  // namespace cubetree
