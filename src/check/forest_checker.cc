#include <dirent.h>
#include <sys/stat.h>

#include <map>
#include <set>
#include <utility>

#include "check/checkers.h"
#include "cubetree/forest.h"
#include "storage/disk_space.h"

namespace cubetree {

struct ForestChecker::Impl {
  std::string dir;
  std::string forest_name;
  BufferPool* pool;
  CheckOptions options;
};

ForestChecker::ForestChecker(std::string dir, std::string forest_name,
                             BufferPool* pool, CheckOptions options)
    : impl_(new Impl{std::move(dir), std::move(forest_name), pool, options}) {}

ForestChecker::~ForestChecker() = default;

Status ForestChecker::Run(CheckReport* report) {
  CubetreeForest::Options options;
  options.dir = impl_->dir;
  options.name = impl_->forest_name;
  auto forest_result = CubetreeForest::Open(options, impl_->pool);
  if (!forest_result.ok()) {
    const Status& status = forest_result.status();
    if (status.IsCorruption()) {
      // A manifest that exists but does not parse is a finding, not a
      // "could not run": the store is there and it is broken.
      report->AddError("forest", "manifest-corrupt", status.ToString(),
                       impl_->dir + "/" + impl_->forest_name);
      return Status::OK();
    }
    return status;
  }
  auto forest = std::move(forest_result).value();
  const std::string forest_ctx = impl_->dir + "/" + impl_->forest_name;

  // --- SelectMapping invariant + placement consistency ------------------
  const ForestPlan& plan = forest->plan();
  std::map<uint32_t, size_t> seen_views;  // view id -> owning tree.
  for (size_t t = 0; t < plan.trees.size(); ++t) {
    const ForestPlan::TreeSpec& spec = plan.trees[t];
    std::set<uint8_t> arities;
    uint8_t max_arity = 0;
    for (uint32_t vid : spec.view_ids) {
      auto view_result = forest->view(vid);
      if (!view_result.ok()) {
        report->AddError("forest", "unknown-view",
                         "tree " + std::to_string(t) +
                             " references undeclared view " +
                             std::to_string(vid),
                         forest_ctx);
        continue;
      }
      const uint8_t arity = (*view_result)->arity();
      max_arity = std::max(max_arity, arity);
      if (!arities.insert(arity).second) {
        report->AddError("forest", "select-mapping",
                         "tree " + std::to_string(t) +
                             " holds two views of arity " +
                             std::to_string(arity) +
                             " (violates one-view-per-arity-per-tree)",
                         forest_ctx);
      }
      auto [it, inserted] = seen_views.emplace(vid, t);
      if (!inserted) {
        report->AddError("forest", "duplicate-placement",
                         "view " + std::to_string(vid) +
                             " placed in trees " +
                             std::to_string(it->second) + " and " +
                             std::to_string(t),
                         forest_ctx);
      }
    }
    const uint8_t expected_dims = std::max<uint8_t>(1, max_arity);
    if (spec.dims != expected_dims) {
      report->AddError("forest", "tree-dims",
                       "tree " + std::to_string(t) + " has dims " +
                           std::to_string(spec.dims) +
                           " but its views' max arity is " +
                           std::to_string(max_arity),
                       forest_ctx);
    }
  }
  for (const ViewDef& view : forest->views()) {
    if (seen_views.count(view.id) == 0) {
      report->AddError("forest", "unplaced-view",
                       "view " + std::to_string(view.id) +
                           " is declared but placed in no tree",
                       forest_ctx);
    }
  }

  // --- Per-tree scans: membership, contiguity, counts -------------------
  uint64_t scanned_total = 0;
  uint64_t meta_total = 0;
  for (size_t t = 0; t < forest->num_trees(); ++t) {
    std::shared_ptr<Cubetree> tree = forest->tree(t);
    std::set<uint32_t> planned(plan.trees[t].view_ids.begin(),
                               plan.trees[t].view_ids.end());
    std::set<uint32_t> present;
    uint64_t scanned = 0;
    PackedRTree::Scanner scanner = tree->rtree()->ScanAll();
    while (true) {
      const PointRecord* rec = nullptr;
      Status status = scanner.Next(&rec);
      if (!status.ok()) {
        report->AddError("forest", "tree-scan",
                         "scan of tree " + std::to_string(t) +
                             " failed: " + status.ToString(),
                         tree->rtree()->path());
        break;
      }
      if (rec == nullptr) break;
      if (present.insert(rec->view_id).second &&
          planned.count(rec->view_id) == 0) {
        report->AddError("forest", "stray-view",
                         "tree " + std::to_string(t) +
                             " stores points of view " +
                             std::to_string(rec->view_id) +
                             " which the plan does not place there",
                         tree->rtree()->path());
      }
      ++scanned;
    }
    if (scanned != tree->rtree()->num_points()) {
      report->AddError("forest", "point-count",
                       "tree " + std::to_string(t) + " scan found " +
                           std::to_string(scanned) +
                           " points, metadata records " +
                           std::to_string(tree->rtree()->num_points()),
                       tree->rtree()->path());
    }
    scanned_total += scanned;
    meta_total += tree->rtree()->num_points();
    for (uint32_t vid : plan.trees[t].view_ids) {
      if (present.count(vid) == 0) {
        report->AddInfo("forest", "empty-view",
                        "view " + std::to_string(vid) +
                            " has no points in tree " + std::to_string(t),
                        tree->rtree()->path());
      }
    }
  }
  if (scanned_total != meta_total || meta_total != forest->TotalPoints()) {
    report->AddError("forest", "total-points",
                     "forest point totals disagree (scanned " +
                         std::to_string(scanned_total) + ", metadata " +
                         std::to_string(forest->TotalPoints()) + ")",
                     forest_ctx);
  }

  // --- Snapshot / GC state ----------------------------------------------
  // The published generation and its file set, plus anything on disk the
  // generation does not reference: retired files a crashed process never
  // reclaimed (or mid-refresh temporaries). Recover sweeps those; here
  // they are surfaced so an operator sees the pending work.
  const ForestGcStats gc = forest->GcStats();
  const std::vector<std::string> live_files = forest->LiveFiles();
  report->AddInfo("forest", "snapshot-state",
                  "live generation epoch " + std::to_string(gc.live_epoch) +
                      ", " + std::to_string(gc.pinned_epochs) +
                      " pinned retired generation(s), " +
                      std::to_string(gc.unreclaimed_files) +
                      " retired file(s) awaiting reclaim, " +
                      std::to_string(live_files.size()) +
                      " file(s) in the live set",
                  forest_ctx);
  std::set<std::string> live_names;
  for (const std::string& path : live_files) {
    const size_t slash = path.find_last_of('/');
    live_names.insert(slash == std::string::npos ? path
                                                 : path.substr(slash + 1));
  }
  const std::string file_prefix = impl_->forest_name + "_t";
  if (DIR* d = ::opendir(impl_->dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.rfind(file_prefix, 0) != 0) continue;
      if (name.size() < 4 || name.substr(name.size() - 4) != ".ctr") {
        continue;  // .quarantine etc. — recovery's concern, not GC's.
      }
      if (live_names.count(name) == 0) {
        report->AddWarning("forest", "unreferenced-file",
                           name +
                               " is not referenced by the live generation "
                               "(unreclaimed retired file or crash orphan; "
                               "Recover will sweep it)",
                           impl_->dir + "/" + name);
      }
    }
    ::closedir(d);
  }

  // --- Disk space -------------------------------------------------------
  // The live file footprint against the volume's free space, so an
  // operator sees how close the next refresh is to a StorageFull refusal
  // (the preflight transiently needs roughly the live bytes again).
  {
    uint64_t live_bytes = 0;
    for (const std::string& path : live_files) {
      struct stat st;
      if (::stat(path.c_str(), &st) == 0) {
        live_bytes += static_cast<uint64_t>(st.st_size);
      }
      if (::stat((path + ".crc").c_str(), &st) == 0) {
        live_bytes += static_cast<uint64_t>(st.st_size);
      }
    }
    DiskSpaceManager disk(DiskSpaceManager::Options{impl_->dir});
    auto space = disk.Probe();
    if (space.ok()) {
      report->AddInfo(
          "forest", "disk-space",
          std::to_string(live_bytes) + " live byte(s) (trees + sidecars); " +
              "volume has " + std::to_string(space->free_bytes) +
              " free, " + std::to_string(space->usable_bytes()) +
              " usable after the " + std::to_string(space->reserve_bytes) +
              "-byte reserve; a full refresh preflights ~" +
              std::to_string(EstimateRefreshBytes(live_bytes, 0)) + " bytes",
          impl_->dir);
    } else {
      report->AddWarning("forest", "disk-space",
                         "free-space probe failed: " +
                             space.status().ToString(),
                         impl_->dir);
    }
  }

  // --- Deep per-file validation -----------------------------------------
  // --checksums alone also walks every tree file: RTreeChecker performs
  // the sidecar verification (its structural depth still honors `deep`).
  if (impl_->options.deep || impl_->options.checksums) {
    auto arity_of = [&forest](uint32_t view_id) -> uint8_t {
      auto view = forest->view(view_id);
      return view.ok() ? (*view)->arity() : 0;
    };
    for (size_t t = 0; t < forest->num_trees(); ++t) {
      std::shared_ptr<Cubetree> tree = forest->tree(t);
      RTreeChecker main_checker(tree->rtree()->path(), impl_->options,
                                arity_of);
      CT_RETURN_NOT_OK(main_checker.Run(report));
      for (size_t d = 0; d < tree->num_deltas(); ++d) {
        RTreeChecker delta_checker(tree->delta(d)->path(), impl_->options,
                                   arity_of);
        CT_RETURN_NOT_OK(delta_checker.Run(report));
      }
    }
  }
  return Status::OK();
}

}  // namespace cubetree
