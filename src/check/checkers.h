#ifndef CUBETREE_CHECK_CHECKERS_H_
#define CUBETREE_CHECK_CHECKERS_H_

#include <functional>
#include <memory>
#include <string>

#include "check/invariant_checker.h"
#include "storage/buffer_pool.h"

namespace cubetree {

/// Options shared by the file-level checkers.
struct CheckOptions {
  /// Deep mode reads every page: containment, pack order, fill factors,
  /// compression round-trips, CRC verification. Shallow mode stops at
  /// metadata-level consistency.
  bool deep = true;
  /// Verify every page of each data file against its `.crc` checksum
  /// sidecar (independently of deep mode's structural checks). Findings:
  ///   checksum-missing   (warning) — no sidecar; pre-checksum file, reads
  ///                      are unverified at runtime too
  ///   checksum-sidecar   (error)   — sidecar present but itself invalid
  ///   checksum-count     (error)   — sidecar entry count != file pages
  ///   checksum-mismatch  (error)   — page bytes do not match stored CRC
  bool checksums = false;
};

/// Deep-validates one packed R-tree (.ctr) file:
///   - metadata: magic, dims in range, root/height/leaf-count agreement,
///     root written last (packed layout), leaves before internal nodes;
///   - structure: every page reachable exactly once, uniform leaf depth,
///     internal MBRs contain their children's actual bounding boxes;
///   - leaves: nonzero entry counts within capacity, uniform fill within a
///     view's run (all but the run's last leaf equally packed), per-entry
///     compression round-trip (decode+re-encode is byte-identical), and —
///     when `view_arity` is provided — implicit-zero suppressed
///     coordinates;
///   - global pack order (x_max,...,x_1) over the sequential leaf scan,
///     single-view leaves, per-view contiguity, and point-count agreement
///     with the metadata page.
class RTreeChecker : public Checker {
 public:
  RTreeChecker(std::string path, CheckOptions options = {},
               std::function<uint8_t(uint32_t)> view_arity = nullptr);
  ~RTreeChecker() override;

  std::string name() const override { return "rtree"; }
  Status Run(CheckReport* report) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Validates a Cubetree forest (manifest + every tree file):
///   - manifest parses and references openable tree files;
///   - SelectMapping invariant: within one tree at most one view per
///     arity, and tree dimensionality equals its views' maximum arity;
///   - every view is placed in exactly one tree;
///   - per-view leaf runs are contiguous and belong to planned views;
///   - forest point totals agree with per-tree metadata;
///   - in deep mode, runs RTreeChecker over every main and delta tree.
class ForestChecker : public Checker {
 public:
  ForestChecker(std::string dir, std::string forest_name, BufferPool* pool,
                CheckOptions options = {});
  ~ForestChecker() override;

  std::string name() const override { return "forest"; }
  Status Run(CheckReport* report) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Validates a write-ahead log file: record framing (length headers never
/// spanning pages, zero padding actually zero), per-record CRC-32C, and
/// replay idempotence (two passes observe the identical record sequence
/// and digest).
class WalChecker : public Checker {
 public:
  explicit WalChecker(std::string path);
  ~WalChecker() override;

  std::string name() const override { return "wal"; }
  Status Run(CheckReport* report) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Reports buffer-pool pin leaks: any frame still pinned when the checker
/// runs (intended at shutdown, after all structures released their pages)
/// is a leaked PageHandle.
class BufferPoolChecker : public Checker {
 public:
  explicit BufferPoolChecker(const BufferPool* pool);
  ~BufferPoolChecker() override;

  std::string name() const override { return "bufferpool"; }
  Status Run(CheckReport* report) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Deep-validates one B+-tree (.ctb) file: metadata magic and ranges,
/// uniform leaf depth equal to the recorded height, per-node occupancy
/// within capacity, keys strictly ascending within and across nodes
/// (separator bounds respected), leaf chain consistent with the tree
/// walk, and entry-count agreement with the metadata.
class BTreeChecker : public Checker {
 public:
  explicit BTreeChecker(std::string path, CheckOptions options = {});
  ~BTreeChecker() override;

  std::string name() const override { return "btree"; }
  Status Run(CheckReport* report) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cubetree

#endif  // CUBETREE_CHECK_CHECKERS_H_
