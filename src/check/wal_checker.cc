#include <utility>

#include "check/checkers.h"
#include "engine/wal.h"

namespace cubetree {

struct WalChecker::Impl {
  std::string path;
};

WalChecker::WalChecker(std::string path) : impl_(new Impl{std::move(path)}) {}

WalChecker::~WalChecker() = default;

Status WalChecker::Run(CheckReport* report) {
  // First pass: framing + CRC. Replay turns any framing violation (bad
  // length, nonzero padding, truncated payload) or CRC mismatch into a
  // Corruption status with the page/offset in the message.
  auto first = WriteAheadLog::Replay(impl_->path);
  if (!first.ok()) {
    const Status& status = first.status();
    if (status.IsCorruption()) {
      report->AddError("wal", "framing-or-crc", status.message(),
                       impl_->path);
      return Status::OK();
    }
    return status;  // Could not open the file at all.
  }
  // Second pass: replay idempotence — re-reading the log must observe the
  // identical record sequence (count, bytes, order-sensitive digest).
  auto second = WriteAheadLog::Replay(impl_->path);
  if (!second.ok()) {
    report->AddError("wal", "replay-unstable",
                     "second replay failed where the first succeeded: " +
                         second.status().ToString(),
                     impl_->path);
    return Status::OK();
  }
  if (first->records != second->records ||
      first->payload_bytes != second->payload_bytes ||
      first->digest != second->digest) {
    report->AddError("wal", "replay-idempotence",
                     "two replays observed different record sequences (" +
                         std::to_string(first->records) + " vs " +
                         std::to_string(second->records) + " records)",
                     impl_->path);
  }
  report->AddInfo("wal", "replayed",
                  std::to_string(first->records) + " record(s), " +
                      std::to_string(first->payload_bytes) +
                      " payload byte(s) verified",
                  impl_->path);
  return Status::OK();
}

}  // namespace cubetree
