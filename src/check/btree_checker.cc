#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_node.h"
#include "check/checkers.h"
#include "storage/page_manager.h"

namespace cubetree {

namespace {

int CompareKeys(const uint32_t* a, const uint32_t* b, uint8_t parts) {
  for (size_t i = 0; i < parts; ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

std::string KeyString(const uint32_t* key, uint8_t parts) {
  std::string out = "(";
  for (size_t i = 0; i < parts; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(key[i]);
  }
  return out + ")";
}

}  // namespace

struct BTreeChecker::Impl {
  std::string path;
  CheckOptions options;

  PageManager* file = nullptr;
  BTreeMeta meta;
  CheckReport* report = nullptr;

  /// Leaves in left-to-right walk order, with their chain links.
  struct LeafInfo {
    PageId id;
    PageId link;
  };
  std::vector<LeafInfo> leaves;
  std::set<PageId> visited;
  uint64_t entries = 0;
  std::vector<uint32_t> prev_key;
  bool have_prev = false;

  void Error(const std::string& code, const std::string& message,
             PageId page = kInvalidPageId) {
    report->AddError("btree", code, message,
                     page == kInvalidPageId
                         ? path
                         : path + " page " + std::to_string(page));
  }

  /// Recursive walk. `low` (inclusive) bounds the subtree's keys when
  /// non-null; `high` (exclusive) likewise.
  void WalkNode(PageId node_id, uint32_t depth, const uint32_t* low,
                const uint32_t* high);
};

BTreeChecker::BTreeChecker(std::string path, CheckOptions options)
    : impl_(new Impl{std::move(path), options}) {}

BTreeChecker::~BTreeChecker() = default;

void BTreeChecker::Impl::WalkNode(PageId node_id, uint32_t depth,
                                  const uint32_t* low, const uint32_t* high) {
  if (node_id == 0 || node_id >= file->NumPages()) {
    Error("child-pointer",
          "child pointer " + std::to_string(node_id) + " out of range");
    return;
  }
  if (!visited.insert(node_id).second) {
    Error("page-shared", "page referenced more than once (cycle or shared "
                         "subtree)",
          node_id);
    return;
  }
  if (depth > meta.height) {
    Error("depth", "node deeper than the recorded height " +
                       std::to_string(meta.height),
          node_id);
    return;
  }
  Page page;
  if (!file->ReadPage(node_id, &page).ok()) {
    Error("unreadable-page", "cannot read page", node_id);
    return;
  }
  const uint8_t parts = meta.key_parts;
  const uint16_t count = BNodeCount(page.data);
  uint32_t key_buf[kMaxBTreeKeyParts];

  if (BNodeIsLeaf(page.data)) {
    if (depth != meta.height) {
      Error("leaf-depth", "leaf at depth " + std::to_string(depth) +
                              ", expected " + std::to_string(meta.height),
            node_id);
    }
    const uint16_t capacity = BTreeLeafCapacity(parts, meta.value_size);
    if (count > capacity) {
      Error("leaf-overflow", "leaf count " + std::to_string(count) +
                                 " exceeds capacity " +
                                 std::to_string(capacity),
            node_id);
      return;
    }
    if (count == 0 && meta.num_entries > 0) {
      Error("empty-node", "empty leaf in a nonempty tree", node_id);
    }
    const size_t entry_bytes = BTreeLeafEntryBytes(parts, meta.value_size);
    for (uint16_t i = 0; i < count; ++i) {
      std::memcpy(key_buf, page.data + kBTreeNodeHeaderSize + i * entry_bytes,
                  BTreeKeyBytes(parts));
      if (have_prev &&
          CompareKeys(prev_key.data(), key_buf, parts) >= 0) {
        Error("key-order", "keys not strictly ascending at " +
                               KeyString(key_buf, parts),
              node_id);
      }
      if (low != nullptr && CompareKeys(key_buf, low, parts) < 0) {
        Error("separator-bound", "key " + KeyString(key_buf, parts) +
                                     " below its subtree's separator " +
                                     KeyString(low, parts),
              node_id);
      }
      if (high != nullptr && CompareKeys(key_buf, high, parts) >= 0) {
        Error("separator-bound", "key " + KeyString(key_buf, parts) +
                                     " at or above the next separator " +
                                     KeyString(high, parts),
              node_id);
      }
      prev_key.assign(key_buf, key_buf + parts);
      have_prev = true;
      ++entries;
    }
    leaves.push_back(LeafInfo{node_id, BNodeLink(page.data)});
    return;
  }

  const uint16_t capacity = BTreeInternalCapacity(parts);
  if (count > capacity) {
    Error("internal-overflow", "internal count " + std::to_string(count) +
                                   " exceeds capacity " +
                                   std::to_string(capacity),
          node_id);
    return;
  }
  if (count == 0) {
    Error("empty-node", "internal node with no separators", node_id);
    return;
  }
  const size_t entry_bytes = BTreeInternalEntryBytes(parts);
  // Separators must themselves be strictly ascending.
  std::vector<uint32_t> separators(static_cast<size_t>(count) * parts);
  for (uint16_t i = 0; i < count; ++i) {
    std::memcpy(separators.data() + static_cast<size_t>(i) * parts,
                page.data + kBTreeNodeHeaderSize + i * entry_bytes,
                BTreeKeyBytes(parts));
    if (i > 0 &&
        CompareKeys(separators.data() + (static_cast<size_t>(i) - 1) * parts,
                    separators.data() + static_cast<size_t>(i) * parts,
                    parts) >= 0) {
      Error("separator-order", "separators not strictly ascending", node_id);
    }
  }
  // Children: [link | keys < s0], then per separator i: [child_i | keys in
  // [s_i, s_{i+1})].
  WalkNode(BNodeLink(page.data), depth + 1, low,
           separators.data());
  for (uint16_t i = 0; i < count; ++i) {
    const PageId child = DecodeFixed32(page.data + kBTreeNodeHeaderSize +
                                       i * entry_bytes +
                                       BTreeKeyBytes(parts));
    const uint32_t* child_low =
        separators.data() + static_cast<size_t>(i) * parts;
    const uint32_t* child_high =
        (i + 1 < count)
            ? separators.data() + (static_cast<size_t>(i) + 1) * parts
            : high;
    WalkNode(child, depth + 1, child_low, child_high);
  }
}

Status BTreeChecker::Run(CheckReport* report) {
  Impl& ctx = *impl_;
  ctx.report = report;
  auto file_result = PageManager::Open(ctx.path);
  if (!file_result.ok()) return file_result.status();
  auto file = std::move(file_result).value();
  ctx.file = file.get();

  if (file->NumPages() == 0) {
    ctx.Error("meta-missing", "file has no pages");
    return Status::OK();
  }
  Page meta_page;
  CT_RETURN_NOT_OK(file->ReadPage(0, &meta_page));
  if (!BTreeReadMeta(meta_page.data, &ctx.meta)) {
    ctx.Error("meta-magic", "bad magic in metadata page");
    return Status::OK();
  }
  if (ctx.meta.key_parts == 0 || ctx.meta.key_parts > kMaxBTreeKeyParts) {
    ctx.Error("meta-key-parts", "key_parts " +
                                    std::to_string(ctx.meta.key_parts) +
                                    " outside [1, " +
                                    std::to_string(kMaxBTreeKeyParts) + "]");
    return Status::OK();
  }
  if (BTreeLeafEntryBytes(ctx.meta.key_parts, ctx.meta.value_size) >
      kPageSize - kBTreeNodeHeaderSize) {
    ctx.Error("meta-value-size", "one leaf entry does not fit in a page");
    return Status::OK();
  }
  if (ctx.meta.root == kInvalidPageId || ctx.meta.root >= file->NumPages()) {
    ctx.Error("meta-root",
              "root page " + std::to_string(ctx.meta.root) + " out of range");
    return Status::OK();
  }
  if (ctx.meta.height == 0) {
    ctx.Error("meta-height", "height 0 with a valid root");
    return Status::OK();
  }
  if (!ctx.options.deep) return Status::OK();

  ctx.WalkNode(ctx.meta.root, 1, nullptr, nullptr);

  if (ctx.entries != ctx.meta.num_entries) {
    ctx.Error("entry-count",
              "walk found " + std::to_string(ctx.entries) +
                  " entries, metadata records " +
                  std::to_string(ctx.meta.num_entries));
  }
  // The leaf chain must thread the leaves exactly in walk order.
  for (size_t i = 0; i < ctx.leaves.size(); ++i) {
    const PageId expected = (i + 1 < ctx.leaves.size())
                                ? ctx.leaves[i + 1].id
                                : kInvalidPageId;
    if (ctx.leaves[i].link != expected) {
      ctx.Error("leaf-chain",
                "leaf link points to page " +
                    std::to_string(ctx.leaves[i].link) + ", expected " +
                    std::to_string(expected),
                ctx.leaves[i].id);
    }
  }
  return Status::OK();
}

}  // namespace cubetree
