#include "check/invariant_checker.h"

#include <cstdio>
#include <sstream>

namespace cubetree {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARNING";
    case Severity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

namespace {

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void CheckReport::Add(Finding finding) {
  size_t same_code = 0;
  for (const Finding& f : findings_) {
    if (f.component == finding.component && f.code == finding.code) {
      ++same_code;
    }
  }
  switch (finding.severity) {
    case Severity::kError:
      ++errors_;
      break;
    case Severity::kWarning:
      ++warnings_;
      break;
    case Severity::kInfo:
      break;
  }
  if (same_code >= kMaxFindingsPerCode) {
    ++suppressed_;
    return;
  }
  findings_.push_back(std::move(finding));
}

void CheckReport::AddError(const std::string& component,
                           const std::string& code,
                           const std::string& message,
                           const std::string& context) {
  Add(Finding{Severity::kError, component, code, message, context});
}

void CheckReport::AddWarning(const std::string& component,
                             const std::string& code,
                             const std::string& message,
                             const std::string& context) {
  Add(Finding{Severity::kWarning, component, code, message, context});
}

void CheckReport::AddInfo(const std::string& component,
                          const std::string& code, const std::string& message,
                          const std::string& context) {
  Add(Finding{Severity::kInfo, component, code, message, context});
}

std::string CheckReport::ToString() const {
  std::ostringstream out;
  for (const Finding& f : findings_) {
    out << SeverityName(f.severity) << " [" << f.component << "/" << f.code
        << "] " << f.message;
    if (!f.context.empty()) out << " (" << f.context << ")";
    out << "\n";
  }
  out << errors_ << " error(s), " << warnings_ << " warning(s)";
  if (suppressed_ > 0) out << ", " << suppressed_ << " suppressed";
  out << "\n";
  return out.str();
}

std::string CheckReport::ToJson() const {
  std::ostringstream out;
  out << "{\"findings\":[";
  for (size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    if (i > 0) out << ",";
    out << "{\"severity\":\"" << SeverityName(f.severity)
        << "\",\"component\":\"" << JsonEscape(f.component)
        << "\",\"code\":\"" << JsonEscape(f.code) << "\",\"message\":\""
        << JsonEscape(f.message) << "\",\"context\":\""
        << JsonEscape(f.context) << "\"}";
  }
  out << "],\"errors\":" << errors_ << ",\"warnings\":" << warnings_
      << ",\"suppressed\":" << suppressed_ << ",\"clean\":"
      << (clean() ? "true" : "false") << "}";
  return out.str();
}

void InvariantChecker::Add(std::unique_ptr<Checker> checker) {
  checkers_.push_back(std::move(checker));
}

Status InvariantChecker::RunAll(CheckReport* report) {
  for (const auto& checker : checkers_) {
    Status status = checker->Run(report);
    if (!status.ok()) {
      report->AddError(checker->name(), "check-failed",
                       "checker could not run: " + status.ToString());
    }
  }
  return Status::OK();
}

}  // namespace cubetree
