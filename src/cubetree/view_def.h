#ifndef CUBETREE_CUBETREE_VIEW_DEF_H_
#define CUBETREE_CUBETREE_VIEW_DEF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "rtree/geometry.h"

namespace cubetree {

/// The grouping-attribute universe of one warehouse workload: every
/// aggregate view projects an ordered subset of these attributes. Attribute
/// values are dense integer keys 1..domain (0 is reserved — see geometry.h).
struct CubeSchema {
  std::vector<std::string> attr_names;
  /// Number of distinct values of each attribute (keys are 1..domain).
  std::vector<uint32_t> attr_domains;
  /// Name of the aggregated measure (e.g. "quantity"); informational.
  std::string measure_name = "quantity";

  size_t num_attrs() const { return attr_names.size(); }
  /// Index of `name` or -1.
  int AttrIndex(const std::string& name) const;
};

/// One materialized aggregate view: SELECT attrs..., SUM(m), COUNT(*) FROM F
/// GROUP BY attrs... The order of `attrs` is the coordinate-axis order when
/// the view is placed in a Cubetree (attrs[0] -> x, attrs[1] -> y, ...), so
/// two ViewDefs with the same attribute *set* but different order are
/// different physical objects (that is exactly what a replica is).
struct ViewDef {
  uint32_t id = 0;
  /// Ordered projection list: indices into the CubeSchema attribute
  /// universe. Empty = the "none" super-aggregate view.
  std::vector<uint32_t> attrs;

  uint8_t arity() const { return static_cast<uint8_t>(attrs.size()); }

  /// Bitmask of the attribute *set* (order-insensitive).
  uint32_t AttrMask() const {
    uint32_t mask = 0;
    for (uint32_t a : attrs) mask |= (1u << a);
    return mask;
  }

  /// True if this view's attribute set contains `mask` (it can answer
  /// queries over those attributes, possibly with re-aggregation).
  bool Covers(uint32_t mask) const { return (AttrMask() & mask) == mask; }

  std::string Name(const CubeSchema& schema) const;

  bool operator==(const ViewDef&) const = default;
};

/// Fixed-width on-disk record of one view tuple: arity coordinates followed
/// by the 12-byte aggregate payload. This is the format of view spools, sort
/// runs and (identically) compressed Cubetree leaf entries.
inline size_t ViewRecordBytes(uint8_t arity) {
  return static_cast<size_t>(arity) * sizeof(Coord) + kAggValueBytes;
}

inline void EncodeViewRecord(char* dst, const Coord* coords, uint8_t arity,
                             const AggValue& agg) {
  std::memcpy(dst, coords, static_cast<size_t>(arity) * sizeof(Coord));
  char* p = dst + static_cast<size_t>(arity) * sizeof(Coord);
  EncodeFixed64(p, static_cast<uint64_t>(agg.sum));
  EncodeFixed32(p + 8, agg.count);
}

inline void DecodeViewRecord(const char* src, uint8_t arity, Coord* coords,
                             AggValue* agg) {
  std::memcpy(coords, src, static_cast<size_t>(arity) * sizeof(Coord));
  const char* p = src + static_cast<size_t>(arity) * sizeof(Coord);
  agg->sum = static_cast<int64_t>(DecodeFixed64(p));
  agg->count = DecodeFixed32(p + 8);
}

/// Comparator for view records of one view in pack order: the LAST
/// projected attribute is the most significant sort key (the paper sorts
/// R{x,y} in (y, x) order).
inline int ViewRecordCompare(const char* a, const char* b, uint8_t arity) {
  for (size_t i = arity; i > 0; --i) {
    const Coord ca = DecodeFixed32(a + (i - 1) * sizeof(Coord));
    const Coord cb = DecodeFixed32(b + (i - 1) * sizeof(Coord));
    if (ca < cb) return -1;
    if (ca > cb) return 1;
  }
  return 0;
}

}  // namespace cubetree

#endif  // CUBETREE_CUBETREE_VIEW_DEF_H_
