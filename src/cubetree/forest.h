#ifndef CUBETREE_CUBETREE_FOREST_H_
#define CUBETREE_CUBETREE_FOREST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cubetree/cubetree.h"
#include "cubetree/select_mapping.h"
#include "cubetree/view_def.h"
#include "sort/external_sorter.h"
#include "storage/buffer_pool.h"

namespace cubetree {

/// What CubetreeForest::Recover found and did. Informational: recovery
/// itself either succeeds (possibly with quarantined trees) or returns an
/// error for genuinely unreadable state (e.g. a corrupt manifest).
struct ForestRecoveryReport {
  /// A refresh journal was present on disk (a refresh was interrupted).
  bool journal_found = false;
  /// The journal recorded a refresh begin without a matching commit.
  bool refresh_in_flight = false;
  uint64_t journal_records = 0;
  /// Files recovery deleted: stale manifest tmp, tree generations no
  /// manifest references, leftover journal.
  std::vector<std::string> removed_orphans;
  /// Indices of trees recovery had to take out of service (unopenable or
  /// failed their invariant check); their files were renamed aside with a
  /// ".quarantine" suffix. The forest stays queryable on the remaining
  /// trees; RebuildQuarantined() restores the rest from base data.
  std::vector<size_t> quarantined_trees;
  /// The views those trees materialized (unavailable until rebuilt).
  std::vector<uint32_t> quarantined_views;
  /// Human-readable log of notable recovery events.
  std::vector<std::string> notes;

  bool clean() const {
    return !journal_found && removed_orphans.empty() &&
           quarantined_trees.empty();
  }
  std::string ToString() const;
};

/// A forest of Cubetrees materializing a set of ROLAP views — the complete
/// storage organization the paper proposes. The forest plans view placement
/// with SelectMapping, bulk-builds each tree from sorted per-view aggregate
/// streams, and refreshes all trees by merge-packing sorted deltas.
class CubetreeForest {
 public:
  struct Options {
    /// Directory for the tree files.
    std::string dir = ".";
    /// File-name prefix (several forests can share a directory).
    std::string name = "forest";
    /// R-tree build options; `dims` is overridden per tree by the plan.
    RTreeOptions rtree;
    /// Ablation switch: place every view in its own tree instead of
    /// running SelectMapping. Costs extra non-leaf/metadata pages and
    /// lowers the buffer hit ratio on the trees' upper levels.
    bool one_tree_per_view = false;
  };

  /// Supplies, per view, the stream of its aggregate tuples — fixed-width
  /// ViewRecordBytes(arity) records sorted in the view's pack order
  /// (ViewRecordCompare). The cube builder implements this on top of view
  /// spools; tests implement it over vectors.
  class ViewDataProvider {
   public:
    virtual ~ViewDataProvider() = default;
    virtual Result<std::unique_ptr<RecordStream>> OpenViewStream(
        const ViewDef& view) = 0;
  };

  static Result<std::unique_ptr<CubetreeForest>> Create(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  /// Reopens a forest persisted by a previous Build/ApplyDelta in the same
  /// directory (the manifest records views, plan and tree generations; the
  /// manifest is replaced atomically after every change, so a crash during
  /// merge-pack leaves the previous generation intact and reopenable).
  /// Strict: any unopenable tree file is an error. After an unclean
  /// shutdown use Recover() instead.
  static Result<std::unique_ptr<CubetreeForest>> Open(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  struct RecoverOptions {
    /// Run the deep R-tree invariant checker over every tree after opening
    /// and quarantine any tree that fails. Turning this off skips the full
    /// file scan and only quarantines trees that fail to open.
    /// (Initialized in the constructor, not inline: an inline initializer
    /// may not be used in a default argument inside the enclosing class.)
    bool deep_check;
    RecoverOptions() : deep_check(true) {}
  };

  /// Crash-recovery variant of Open. Replays and retires the refresh
  /// journal, removes the stale manifest tmp and any tree-generation files
  /// the manifest does not reference (the half-built output of an
  /// interrupted refresh, or the un-reclaimed input of a committed one),
  /// and quarantines trees that cannot be opened or fail their invariant
  /// check — renaming their files aside with a ".quarantine" suffix so the
  /// forest stays queryable on the surviving trees. Recovery is
  /// idempotent: crashing inside Recover and running it again converges to
  /// the same state. Only a missing or corrupt manifest is an error.
  static Result<std::unique_ptr<CubetreeForest>> Recover(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr,
      ForestRecoveryReport* report = nullptr,
      RecoverOptions recover = RecoverOptions());

  /// Plans placement and bulk-builds every tree. Call once.
  Status Build(const std::vector<ViewDef>& views, ViewDataProvider* provider);

  /// Bulk-incremental refresh: merge-packs each tree with the delta streams
  /// (the architecture of the paper's Figure 15). Old tree files are
  /// replaced atomically from the caller's perspective. Any pending delta
  /// trees are folded in as well.
  Status ApplyDelta(ViewDataProvider* delta_provider);

  /// LSM-style refresh extension: packs the increment into small *delta
  /// trees* attached to each main tree instead of rewriting the mains.
  /// Refresh cost becomes proportional to the increment; queries pay a
  /// small extra search per pending delta until Compact().
  Status ApplyDeltaPartial(ViewDataProvider* delta_provider);

  /// Merge-packs every tree's main + pending deltas into a fresh main
  /// tree and retires the delta files.
  Status Compact();

  /// Rebuilds every quarantined tree from scratch: `provider` must supply
  /// the full current contents of each affected view (base data, not a
  /// delta). New generations are built beside the quarantined files, the
  /// manifest is swapped durably, and the ".quarantine" files are removed.
  Status RebuildQuarantined(ViewDataProvider* provider);

  /// True if the tree materializing `view_id` is quarantined (queries
  /// against it return Unavailable until RebuildQuarantined runs).
  bool IsViewQuarantined(uint32_t view_id) const;
  size_t NumQuarantinedTrees() const;
  bool HasQuarantine() const { return NumQuarantinedTrees() > 0; }

  /// Stored points per view id, from a full scan of every healthy tree
  /// (main + deltas). Used to re-derive router statistics after recovery.
  Result<std::map<uint32_t, uint64_t>> CountPointsPerView();

  /// Pending delta trees across the forest.
  size_t TotalDeltas() const;

  const ForestPlan& plan() const { return plan_; }
  size_t num_trees() const { return trees_.size(); }
  /// nullptr when tree `i` is quarantined.
  Cubetree* tree(size_t i) { return trees_[i].get(); }

  Result<Cubetree*> TreeForView(uint32_t view_id);
  Result<const ViewDef*> view(uint32_t view_id) const;
  const std::vector<ViewDef>& views() const { return views_; }

  /// Total bytes across all tree files (storage footprint of the
  /// organization, index included — there is nothing else).
  uint64_t TotalSizeBytes() const;
  /// Total stored points across all trees.
  uint64_t TotalPoints() const;

  /// Removes all tree files.
  Status Destroy();

 private:
  CubetreeForest(Options options, BufferPool* pool,
                 std::shared_ptr<IoStats> io_stats)
      : options_(std::move(options)),
        pool_(pool),
        io_stats_(std::move(io_stats)) {}

  std::string TreePath(size_t tree_index, uint32_t generation) const;
  std::string DeltaPath(size_t tree_index, uint32_t generation) const;
  std::string ManifestPath() const;
  std::string JournalPath() const;
  /// Serializes the manifest for the given generation vectors (state is
  /// passed in, not read from members, so the commit protocol can write
  /// the next state before mutating the in-memory one).
  std::string SerializeManifest(
      const std::vector<uint32_t>& generations,
      const std::vector<std::vector<uint32_t>>& delta_generations) const;
  /// Durable manifest swap: write tmp, fsync it, rename into place, fsync
  /// the directory. Once the rename has happened the commit is in effect;
  /// later failures are logged, not returned.
  Status SaveManifestDurable(
      const std::vector<uint32_t>& generations,
      const std::vector<std::vector<uint32_t>>& delta_generations) const;
  Status SaveManifest() const;
  /// Parses the manifest and opens every tree. In tolerant mode an
  /// unopenable tree is quarantined instead of failing the load.
  Status LoadManifest(bool tolerant, ForestRecoveryReport* report);
  /// Takes tree `t` out of service: closes it, renames its files aside
  /// with a ".quarantine" suffix, and records the event.
  void QuarantineTree(size_t t, const Status& why,
                      ForestRecoveryReport* report);
  /// Phase 1 of ApplyDelta: merge-pack every tree's next generation beside
  /// the current files, without touching any live state.
  Status BuildNextGenerations(
      ViewDataProvider* delta_provider, std::vector<uint32_t>* generations,
      std::vector<std::unique_ptr<PackedRTree>>* new_trees);
  /// Deletes files recovery identified as orphans, consulting the
  /// forest.recover.gc failpoint per file.
  void RemoveOrphan(const std::string& path, ForestRecoveryReport* report);
  /// Builds the pack-ordered point source over one tree's delta streams.
  Result<std::unique_ptr<PointSource>> MakeDeltaSource(
      size_t tree_index, ViewDataProvider* provider);
  /// Views of tree `i` in ascending arity = pack order of their regions.
  std::vector<const ViewDef*> TreeViewsAscArity(size_t tree_index) const;
  std::function<uint8_t(uint32_t)> ArityFn() const;

  Options options_;
  BufferPool* pool_;
  std::shared_ptr<IoStats> io_stats_;
  ForestPlan plan_;
  std::vector<ViewDef> views_;
  std::map<uint32_t, ViewDef> views_by_id_;
  std::vector<std::unique_ptr<Cubetree>> trees_;
  std::vector<uint32_t> generations_;
  /// Per tree: the generation numbers of its pending delta trees.
  std::vector<std::vector<uint32_t>> delta_generations_;
  std::vector<uint32_t> next_delta_generation_;
  /// Per tree: out of service after recovery found it unreadable. A
  /// quarantined slot holds nullptr in trees_.
  std::vector<bool> quarantined_;
  /// Per tree: the ".quarantine" files to delete once the tree is rebuilt.
  std::vector<std::vector<std::string>> quarantine_files_;
};

}  // namespace cubetree

#endif  // CUBETREE_CUBETREE_FOREST_H_
