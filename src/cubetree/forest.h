#ifndef CUBETREE_CUBETREE_FOREST_H_
#define CUBETREE_CUBETREE_FOREST_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "cubetree/cubetree.h"
#include "cubetree/select_mapping.h"
#include "cubetree/view_def.h"
#include "sort/external_sorter.h"
#include "storage/buffer_pool.h"
#include "storage/disk_space.h"

namespace cubetree {

/// In-process garbage-collection state of the snapshot layer, for ops
/// tooling (ctfsck --json) and the stress harness.
struct ForestGcStats {
  /// Epoch number of the currently published (serving) generation.
  uint64_t live_epoch = 0;
  /// Retired epochs still alive because a snapshot pins them.
  uint64_t pinned_epochs = 0;
  /// Retired tree files whose unlink is deferred until the last pinning
  /// epoch dies (or was skipped by a GC failpoint / unlink error; recovery
  /// sweeps those as orphans).
  uint64_t unreclaimed_files = 0;
  /// Retired tree files unlinked so far.
  uint64_t reclaimed_files = 0;
};

namespace forest_internal {

/// Reclamation bookkeeping shared by the forest and every epoch state it
/// ever published; outlives the forest if snapshots do.
struct GcShared {
  Mutex mu;
  uint64_t live_epoch GUARDED_BY(mu) = 0;
  std::set<uint64_t> pinned_retired_epochs GUARDED_BY(mu);
  uint64_t unreclaimed_files GUARDED_BY(mu) = 0;
  uint64_t reclaimed_files GUARDED_BY(mu) = 0;
  /// Paths with a live TrackedFile token (referenced by some epoch, live or
  /// pinned-retired). The online space-reclaim sweep must never unlink
  /// these: a pinned reader may still be reading them.
  std::set<std::string> tracked_paths GUARDED_BY(mu);
};

/// One on-disk tree file tracked for epoch-based reclamation. Every epoch
/// state whose live set contains the file holds a reference. Retire() arms
/// deletion when the file drops out of the published generation; the
/// destructor — running when the last referencing epoch dies, possibly on
/// a reader thread releasing the final snapshot — unlinks it then. An
/// unretired token (forest shutdown with the file still live) deletes
/// nothing.
class TrackedFile {
 public:
  TrackedFile(std::string path, std::shared_ptr<GcShared> gc);
  ~TrackedFile();

  TrackedFile(const TrackedFile&) = delete;
  TrackedFile& operator=(const TrackedFile&) = delete;

  void Retire();
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::shared_ptr<GcShared> gc_;
  std::atomic<bool> retired_{false};
  /// A GC failpoint vetoed the unlink; the file is left for recovery.
  std::atomic<bool> leaked_{false};
};

/// One committed generation of the whole forest: the immutable tree set a
/// snapshot pins. Destroying the state (last reference dropped) releases
/// the Cubetrees and then reclaims any files retired since.
struct EpochState {
  ~EpochState();

  uint64_t epoch = 0;
  std::shared_ptr<GcShared> gc;
  std::atomic<bool> retired{false};
  std::map<uint32_t, size_t> view_to_tree;
  std::vector<bool> quarantined;
  /// Declared before `trees` so the trees (and their open file handles)
  /// are destroyed first, then retired files are unlinked.
  std::vector<std::shared_ptr<TrackedFile>> files;
  /// nullptr in quarantined slots.
  std::vector<std::shared_ptr<Cubetree>> trees;
};

}  // namespace forest_internal

/// A refcounted handle pinning one committed forest generation. Queries run
/// against a snapshot see that generation's trees — never a mix of pre- and
/// post-refresh state — no matter how many refreshes commit while they run.
/// Acquiring costs one atomic shared_ptr load; releasing the last handle of
/// a retired generation reclaims its replaced tree files. Snapshots may
/// outlive the forest's mutators but must be released before the forest and
/// its BufferPool are destroyed (the trees read through that pool).
class ForestSnapshot {
 public:
  ForestSnapshot() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t epoch() const { return state_->epoch; }
  size_t num_trees() const { return state_->trees.size(); }
  /// nullptr when tree `i` is quarantined in this generation.
  Cubetree* tree(size_t i) const { return state_->trees[i].get(); }
  bool IsViewQuarantined(uint32_t view_id) const;
  /// The tree materializing `view_id` in this generation (NotFound for an
  /// unknown view, Unavailable for a quarantined one).
  Result<Cubetree*> TreeForView(uint32_t view_id) const;
  /// Stored points across the generation's healthy trees.
  uint64_t TotalPoints() const;

  /// Drops the pin early (the destructor also releases it).
  void Release() { state_.reset(); }

 private:
  friend class CubetreeForest;
  explicit ForestSnapshot(
      std::shared_ptr<const forest_internal::EpochState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const forest_internal::EpochState> state_;
};

/// What CubetreeForest::Recover found and did. Informational: recovery
/// itself either succeeds (possibly with quarantined trees) or returns an
/// error for genuinely unreadable state (e.g. a corrupt manifest).
struct ForestRecoveryReport {
  /// A refresh journal was present on disk (a refresh was interrupted).
  bool journal_found = false;
  /// The journal recorded a refresh begin without a matching commit.
  bool refresh_in_flight = false;
  uint64_t journal_records = 0;
  /// Files recovery deleted: stale manifest tmp, tree generations no
  /// manifest references, leftover journal.
  std::vector<std::string> removed_orphans;
  /// Indices of trees recovery had to take out of service (unopenable or
  /// failed their invariant check); their files were renamed aside with a
  /// ".quarantine" suffix. The forest stays queryable on the remaining
  /// trees; RebuildQuarantined() restores the rest from base data.
  std::vector<size_t> quarantined_trees;
  /// The views those trees materialized (unavailable until rebuilt).
  std::vector<uint32_t> quarantined_views;
  /// Human-readable log of notable recovery events.
  std::vector<std::string> notes;

  bool clean() const {
    return !journal_found && removed_orphans.empty() &&
           quarantined_trees.empty();
  }
  std::string ToString() const;
};

/// A forest of Cubetrees materializing a set of ROLAP views — the complete
/// storage organization the paper proposes. The forest plans view placement
/// with SelectMapping, bulk-builds each tree from sorted per-view aggregate
/// streams, and refreshes all trees by merge-packing sorted deltas.
///
/// Concurrency model: every committed state is published as an immutable
/// generation (EpochState) behind one atomic shared_ptr. Readers call
/// AcquireSnapshot() — wait-free, one atomic load — and query the pinned
/// generation while refreshes build and commit the next one off to the
/// side; mutators (ApplyDelta/ApplyDeltaPartial/Compact/RebuildQuarantined)
/// serialize on an internal mutex. Files replaced by a refresh are retired,
/// not unlinked: reclamation happens when the last epoch referencing them
/// dies (epoch-based reclamation), so a reader pinned three refreshes back
/// still completes against intact files. The direct accessors
/// (tree/TreeForView/TotalPoints/...) remain single-threaded conveniences
/// for loaders and tools; concurrent queries must go through snapshots.
class CubetreeForest {
 public:
  struct Options {
    /// Directory for the tree files.
    std::string dir = ".";
    /// File-name prefix (several forests can share a directory).
    std::string name = "forest";
    /// R-tree build options; `dims` is overridden per tree by the plan.
    RTreeOptions rtree;
    /// Ablation switch: place every view in its own tree instead of
    /// running SelectMapping. Costs extra non-leaf/metadata pages and
    /// lowers the buffer hit ratio on the trees' upper levels.
    bool one_tree_per_view = false;
    /// Free space left untouched on the volume by the refresh preflight
    /// (default from CUBETREE_DISK_RESERVE_BYTES; see DiskSpaceManager).
    uint64_t disk_reserve_bytes = DiskSpaceManager::ReserveBytesFromEnv();
    /// Worker-pool width for refresh merge-packing: each Cubetree of the
    /// forest is packed by its own worker (the trees are disjoint by
    /// SelectMapping), capped at the number of trees. 0 resolves from
    /// CUBETREE_REFRESH_THREADS, falling back to hardware_concurrency.
    unsigned refresh_threads = 0;
  };

  /// Supplies, per view, the stream of its aggregate tuples — fixed-width
  /// ViewRecordBytes(arity) records sorted in the view's pack order
  /// (ViewRecordCompare). The cube builder implements this on top of view
  /// spools; tests implement it over vectors.
  ///
  /// Thread contract: the forest calls OpenViewStream serially from the
  /// refreshing thread (providers need not be thread-safe), but during a
  /// parallel refresh the returned streams of *different* trees are
  /// consumed concurrently — each stream is read by exactly one worker, so
  /// streams must not share mutable state with each other.
  class ViewDataProvider {
   public:
    virtual ~ViewDataProvider() = default;
    virtual Result<std::unique_ptr<RecordStream>> OpenViewStream(
        const ViewDef& view) = 0;
    /// Best-effort total byte count of all streams this provider will
    /// supply, for the refresh disk-space preflight. 0 means unknown (the
    /// preflight then only covers repacking the live trees).
    virtual uint64_t EstimatedInputBytes() const { return 0; }
  };

  static Result<std::unique_ptr<CubetreeForest>> Create(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  /// Reopens a forest persisted by a previous Build/ApplyDelta in the same
  /// directory (the manifest records views, plan and tree generations; the
  /// manifest is replaced atomically after every change, so a crash during
  /// merge-pack leaves the previous generation intact and reopenable).
  /// Strict: any unopenable tree file is an error. After an unclean
  /// shutdown use Recover() instead.
  static Result<std::unique_ptr<CubetreeForest>> Open(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  struct RecoverOptions {
    /// Run the deep R-tree invariant checker over every tree after opening
    /// and quarantine any tree that fails. Turning this off skips the full
    /// file scan and only quarantines trees that fail to open.
    /// (Initialized in the constructor, not inline: an inline initializer
    /// may not be used in a default argument inside the enclosing class.)
    bool deep_check;
    RecoverOptions() : deep_check(true) {}
  };

  /// Crash-recovery variant of Open. Replays and retires the refresh
  /// journal, removes the stale manifest tmp and any tree-generation files
  /// the manifest does not reference (the half-built output of an
  /// interrupted refresh, or the un-reclaimed input of a committed one),
  /// and quarantines trees that cannot be opened or fail their invariant
  /// check — renaming their files aside with a ".quarantine" suffix so the
  /// forest stays queryable on the surviving trees. Recovery is
  /// idempotent: crashing inside Recover and running it again converges to
  /// the same state. Only a missing or corrupt manifest is an error.
  static Result<std::unique_ptr<CubetreeForest>> Recover(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr,
      ForestRecoveryReport* report = nullptr,
      RecoverOptions recover = RecoverOptions());

  /// Plans placement and bulk-builds every tree. Call once.
  Status Build(const std::vector<ViewDef>& views, ViewDataProvider* provider)
      EXCLUDES(refresh_mu_);

  /// Bulk-incremental refresh: merge-packs each tree with the delta streams
  /// (the architecture of the paper's Figure 15). Old tree files are
  /// replaced atomically from the caller's perspective. Any pending delta
  /// trees are folded in as well.
  Status ApplyDelta(ViewDataProvider* delta_provider) EXCLUDES(refresh_mu_);

  /// LSM-style refresh extension: packs the increment into small *delta
  /// trees* attached to each main tree instead of rewriting the mains.
  /// Refresh cost becomes proportional to the increment; queries pay a
  /// small extra search per pending delta until Compact().
  Status ApplyDeltaPartial(ViewDataProvider* delta_provider)
      EXCLUDES(refresh_mu_);

  /// Merge-packs every tree's main + pending deltas into a fresh main
  /// tree and retires the delta files.
  Status Compact() EXCLUDES(refresh_mu_);

  /// Rebuilds every quarantined tree from scratch: `provider` must supply
  /// the full current contents of each affected view (base data, not a
  /// delta). New generations are built beside the quarantined files, the
  /// manifest is swapped durably, and the ".quarantine" files are removed.
  Status RebuildQuarantined(ViewDataProvider* provider)
      EXCLUDES(refresh_mu_);

  /// Read-repair entry point: takes the tree currently materializing
  /// `view_id` out of service after a read surfaced Corruption (checksum
  /// mismatch, bad magic, short read) and publishes a new epoch so routing
  /// immediately skips the affected views. When `file_path` is non-empty
  /// the quarantine only proceeds while that exact file is still part of
  /// the live tree — a scrubber working off an older snapshot must not
  /// shoot down a freshly refreshed, healthy replacement. Returns true if
  /// the tree was newly quarantined; false if it was already quarantined
  /// or already replaced. NotFound for an unknown view.
  Result<bool> QuarantineForCorruption(uint32_t view_id,
                                       const std::string& file_path,
                                       const Status& why)
      EXCLUDES(refresh_mu_);

  /// True if the tree materializing `view_id` is quarantined (queries
  /// against it return Unavailable until RebuildQuarantined runs).
  bool IsViewQuarantined(uint32_t view_id) const EXCLUDES(refresh_mu_);
  size_t NumQuarantinedTrees() const EXCLUDES(refresh_mu_);
  bool HasQuarantine() const EXCLUDES(refresh_mu_) {
    return NumQuarantinedTrees() > 0;
  }

  /// Stored points per view id, from a full scan of every healthy tree
  /// (main + deltas). Used to re-derive router statistics after recovery.
  Result<std::map<uint32_t, uint64_t>> CountPointsPerView()
      EXCLUDES(refresh_mu_);

  /// Pending delta trees across the forest.
  size_t TotalDeltas() const EXCLUDES(refresh_mu_);

  const ForestPlan& plan() const { return plan_; }
  size_t num_trees() const EXCLUDES(refresh_mu_) {
    MutexLock lock(refresh_mu_);
    return trees_.size();
  }
  /// nullptr when tree `i` is quarantined. Returns the shared_ptr, not a
  /// raw pointer: a refresh publishing concurrently swaps trees_[i], and a
  /// raw pointer handed out before the swap would dangle the moment the
  /// last pinning epoch died. The returned handle keeps the tree (and its
  /// open file) alive even across a concurrent publish; the tree may just
  /// no longer be the serving generation. Multi-tree consistency still
  /// requires AcquireSnapshot().
  std::shared_ptr<Cubetree> tree(size_t i) EXCLUDES(refresh_mu_) {
    MutexLock lock(refresh_mu_);
    return trees_[i];
  }

  Result<std::shared_ptr<Cubetree>> TreeForView(uint32_t view_id)
      EXCLUDES(refresh_mu_);
  Result<const ViewDef*> view(uint32_t view_id) const;
  const std::vector<ViewDef>& views() const { return views_; }

  /// Total bytes across all tree files (storage footprint of the
  /// organization, index included — there is nothing else).
  uint64_t TotalSizeBytes() const EXCLUDES(refresh_mu_);
  /// Total stored points across all trees.
  uint64_t TotalPoints() const EXCLUDES(refresh_mu_);

  /// The worker-pool width a refresh of the current forest would use:
  /// options_.refresh_threads (or the CUBETREE_REFRESH_THREADS /
  /// hardware_concurrency default) capped at the number of trees. The
  /// disk-space preflight and the engine's admission estimates use this so
  /// the reserved temp space covers every concurrent packer.
  unsigned RefreshConcurrency() const EXCLUDES(refresh_mu_);

  /// Pins the currently published generation. Wait-free; safe to call from
  /// any thread concurrently with refreshes. Returns an invalid snapshot
  /// only before the first Build/Open publishes a generation.
  ForestSnapshot AcquireSnapshot() const;

  /// Snapshot-layer GC counters (epochs pinned, files awaiting reclaim).
  ForestGcStats GcStats() const;

  /// Online counterpart of recovery's orphan sweep: deletes this forest's
  /// on-disk files that are neither part of the live state nor tracked by
  /// any epoch still pinning them — crash debris from an earlier run, or
  /// files whose deferred unlink was vetoed or failed. Safe while queries
  /// serve. Returns the bytes reclaimed. The refresh preflight calls this
  /// automatically before refusing for lack of space.
  uint64_t ReclaimSpace() EXCLUDES(refresh_mu_);

  /// Paths of every file the published generation references (main trees
  /// and pending deltas). Anything else matching the forest's file naming
  /// on disk is retired-but-unreclaimed or crash-orphaned; ctfsck reports
  /// it and Recover sweeps it.
  std::vector<std::string> LiveFiles() const;

  /// Removes all tree files.
  Status Destroy() EXCLUDES(refresh_mu_);

 private:
  CubetreeForest(Options options, BufferPool* pool,
                 std::shared_ptr<IoStats> io_stats)
      : options_(std::move(options)),
        pool_(pool),
        io_stats_(std::move(io_stats)) {}

  std::string TreePath(size_t tree_index, uint32_t generation) const;
  std::string DeltaPath(size_t tree_index, uint32_t generation) const;
  std::string ManifestPath() const;
  std::string JournalPath() const;
  /// Serializes the manifest for the given generation vectors (state is
  /// passed in, not read from members, so the commit protocol can write
  /// the next state before mutating the in-memory one).
  std::string SerializeManifest(
      const std::vector<uint32_t>& generations,
      const std::vector<std::vector<uint32_t>>& delta_generations) const;
  /// Durable manifest swap: write tmp, fsync it, rename into place, fsync
  /// the directory. Once the rename has happened the commit is in effect;
  /// later failures are logged, not returned.
  Status SaveManifestDurable(
      const std::vector<uint32_t>& generations,
      const std::vector<std::vector<uint32_t>>& delta_generations) const;
  Status SaveManifest() const REQUIRES(refresh_mu_);
  /// Parses the manifest and opens every tree. In tolerant mode an
  /// unopenable tree is quarantined instead of failing the load.
  Status LoadManifest(bool tolerant, ForestRecoveryReport* report)
      REQUIRES(refresh_mu_);
  /// Takes tree `t` out of service: closes it, renames its files aside
  /// with a ".quarantine" suffix, and records the event.
  void QuarantineTree(size_t t, const Status& why,
                      ForestRecoveryReport* report) REQUIRES(refresh_mu_);
  /// Phase 1 of ApplyDelta: merge-pack every tree's next generation beside
  /// the current files, without touching any live state.
  Status BuildNextGenerations(
      ViewDataProvider* delta_provider, std::vector<uint32_t>* generations,
      std::vector<std::unique_ptr<PackedRTree>>* new_trees)
      REQUIRES(refresh_mu_);
  /// Deletes files recovery identified as orphans, consulting the
  /// forest.recover.gc failpoint per file.
  void RemoveOrphan(const std::string& path, ForestRecoveryReport* report);
  /// Builds the pack-ordered point source over one tree's delta streams.
  Result<std::unique_ptr<PointSource>> MakeDeltaSource(
      size_t tree_index, ViewDataProvider* provider);
  /// Views of tree `i` in ascending arity = pack order of their regions.
  std::vector<const ViewDef*> TreeViewsAscArity(size_t tree_index) const;
  std::function<uint8_t(uint32_t)> ArityFn() const;
  /// Publishes the current in-memory state as the next generation: copies
  /// the tree set into a fresh EpochState, carries over file-reclamation
  /// tokens for files still live, retires tokens for files this generation
  /// dropped, and swaps the atomic pointer.
  void PublishState() REQUIRES(refresh_mu_);
  /// Disk-space preflight for a refresh estimated at `estimated_bytes`:
  /// probe the volume, and when short first run the online reclaim sweep
  /// and re-probe. StorageFull (typed, retriable, naming the shortfall)
  /// refuses the refresh while the published epoch keeps serving.
  Status PreflightRefreshLocked(uint64_t estimated_bytes)
      REQUIRES(refresh_mu_);
  /// Worker count for a refresh over `num_tasks` independent tree packs:
  /// the configured/env-resolved pool width, capped at num_tasks, >= 1.
  unsigned ResolvedRefreshThreads(size_t num_tasks) const;
  uint64_t ReclaimSpaceLocked() REQUIRES(refresh_mu_);
  uint64_t TotalSizeBytesLocked() const REQUIRES(refresh_mu_);
  /// Lock-held variants of the quarantine accessors, for use inside
  /// mutators that already hold refresh_mu_.
  size_t NumQuarantinedTreesLocked() const REQUIRES(refresh_mu_);
  bool HasQuarantineLocked() const REQUIRES(refresh_mu_) {
    return NumQuarantinedTreesLocked() > 0;
  }

  Options options_;
  BufferPool* pool_;
  std::shared_ptr<IoStats> io_stats_;
  // plan_, views_ and views_by_id_ are written once (Build/LoadManifest,
  // under refresh_mu_) and immutable afterwards, so reads stay unguarded.
  ForestPlan plan_;
  std::vector<ViewDef> views_;
  std::map<uint32_t, ViewDef> views_by_id_;
  std::vector<std::shared_ptr<Cubetree>> trees_ GUARDED_BY(refresh_mu_);
  std::vector<uint32_t> generations_ GUARDED_BY(refresh_mu_);
  /// Per tree: the generation numbers of its pending delta trees.
  std::vector<std::vector<uint32_t>> delta_generations_
      GUARDED_BY(refresh_mu_);
  std::vector<uint32_t> next_delta_generation_ GUARDED_BY(refresh_mu_);
  /// Per tree: out of service after recovery found it unreadable. A
  /// quarantined slot holds nullptr in trees_.
  std::vector<bool> quarantined_ GUARDED_BY(refresh_mu_);
  /// Per tree: the ".quarantine" files to delete once the tree is rebuilt.
  std::vector<std::vector<std::string>> quarantine_files_
      GUARDED_BY(refresh_mu_);

  /// Serializes mutators (refresh, compaction, rebuild, destroy) against
  /// each other; snapshot readers never take it (they go through the
  /// atomic `published_`). Lock order: refresh_mu_ before gc_->mu, never
  /// the reverse.
  mutable Mutex refresh_mu_;
  std::shared_ptr<forest_internal::GcShared> gc_ =
      std::make_shared<forest_internal::GcShared>();
  /// The serving generation; AcquireSnapshot loads it, PublishState swaps
  /// it. Held non-const so PublishState can flag the outgoing state
  /// retired; snapshots only ever see it const.
  std::atomic<std::shared_ptr<forest_internal::EpochState>> published_;
  uint64_t next_epoch_ GUARDED_BY(refresh_mu_) = 1;
};

}  // namespace cubetree

#endif  // CUBETREE_CUBETREE_FOREST_H_
