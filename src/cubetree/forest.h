#ifndef CUBETREE_CUBETREE_FOREST_H_
#define CUBETREE_CUBETREE_FOREST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cubetree/cubetree.h"
#include "cubetree/select_mapping.h"
#include "cubetree/view_def.h"
#include "sort/external_sorter.h"
#include "storage/buffer_pool.h"

namespace cubetree {

/// A forest of Cubetrees materializing a set of ROLAP views — the complete
/// storage organization the paper proposes. The forest plans view placement
/// with SelectMapping, bulk-builds each tree from sorted per-view aggregate
/// streams, and refreshes all trees by merge-packing sorted deltas.
class CubetreeForest {
 public:
  struct Options {
    /// Directory for the tree files.
    std::string dir = ".";
    /// File-name prefix (several forests can share a directory).
    std::string name = "forest";
    /// R-tree build options; `dims` is overridden per tree by the plan.
    RTreeOptions rtree;
    /// Ablation switch: place every view in its own tree instead of
    /// running SelectMapping. Costs extra non-leaf/metadata pages and
    /// lowers the buffer hit ratio on the trees' upper levels.
    bool one_tree_per_view = false;
  };

  /// Supplies, per view, the stream of its aggregate tuples — fixed-width
  /// ViewRecordBytes(arity) records sorted in the view's pack order
  /// (ViewRecordCompare). The cube builder implements this on top of view
  /// spools; tests implement it over vectors.
  class ViewDataProvider {
   public:
    virtual ~ViewDataProvider() = default;
    virtual Result<std::unique_ptr<RecordStream>> OpenViewStream(
        const ViewDef& view) = 0;
  };

  static Result<std::unique_ptr<CubetreeForest>> Create(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  /// Reopens a forest persisted by a previous Build/ApplyDelta in the same
  /// directory (the manifest records views, plan and tree generations; the
  /// manifest is replaced atomically after every change, so a crash during
  /// merge-pack leaves the previous generation intact and reopenable).
  static Result<std::unique_ptr<CubetreeForest>> Open(
      Options options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  /// Plans placement and bulk-builds every tree. Call once.
  Status Build(const std::vector<ViewDef>& views, ViewDataProvider* provider);

  /// Bulk-incremental refresh: merge-packs each tree with the delta streams
  /// (the architecture of the paper's Figure 15). Old tree files are
  /// replaced atomically from the caller's perspective. Any pending delta
  /// trees are folded in as well.
  Status ApplyDelta(ViewDataProvider* delta_provider);

  /// LSM-style refresh extension: packs the increment into small *delta
  /// trees* attached to each main tree instead of rewriting the mains.
  /// Refresh cost becomes proportional to the increment; queries pay a
  /// small extra search per pending delta until Compact().
  Status ApplyDeltaPartial(ViewDataProvider* delta_provider);

  /// Merge-packs every tree's main + pending deltas into a fresh main
  /// tree and retires the delta files.
  Status Compact();

  /// Pending delta trees across the forest.
  size_t TotalDeltas() const;

  const ForestPlan& plan() const { return plan_; }
  size_t num_trees() const { return trees_.size(); }
  Cubetree* tree(size_t i) { return trees_[i].get(); }

  Result<Cubetree*> TreeForView(uint32_t view_id);
  Result<const ViewDef*> view(uint32_t view_id) const;
  const std::vector<ViewDef>& views() const { return views_; }

  /// Total bytes across all tree files (storage footprint of the
  /// organization, index included — there is nothing else).
  uint64_t TotalSizeBytes() const;
  /// Total stored points across all trees.
  uint64_t TotalPoints() const;

  /// Removes all tree files.
  Status Destroy();

 private:
  CubetreeForest(Options options, BufferPool* pool,
                 std::shared_ptr<IoStats> io_stats)
      : options_(std::move(options)),
        pool_(pool),
        io_stats_(std::move(io_stats)) {}

  std::string TreePath(size_t tree_index, uint32_t generation) const;
  std::string DeltaPath(size_t tree_index, uint32_t generation) const;
  std::string ManifestPath() const;
  Status SaveManifest() const;
  /// Builds the pack-ordered point source over one tree's delta streams.
  Result<std::unique_ptr<PointSource>> MakeDeltaSource(
      size_t tree_index, ViewDataProvider* provider);
  /// Views of tree `i` in ascending arity = pack order of their regions.
  std::vector<const ViewDef*> TreeViewsAscArity(size_t tree_index) const;
  std::function<uint8_t(uint32_t)> ArityFn() const;

  Options options_;
  BufferPool* pool_;
  std::shared_ptr<IoStats> io_stats_;
  ForestPlan plan_;
  std::vector<ViewDef> views_;
  std::map<uint32_t, ViewDef> views_by_id_;
  std::vector<std::unique_ptr<Cubetree>> trees_;
  std::vector<uint32_t> generations_;
  /// Per tree: the generation numbers of its pending delta trees.
  std::vector<std::vector<uint32_t>> delta_generations_;
  std::vector<uint32_t> next_delta_generation_;
};

}  // namespace cubetree

#endif  // CUBETREE_CUBETREE_FOREST_H_
