#ifndef CUBETREE_CUBETREE_SELECT_MAPPING_H_
#define CUBETREE_CUBETREE_SELECT_MAPPING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "cubetree/view_def.h"

namespace cubetree {

/// The result of mapping a view set onto a minimal forest of Cubetrees.
struct ForestPlan {
  struct TreeSpec {
    /// Dimensionality of the tree = max arity of its views.
    uint8_t dims = 0;
    /// Views placed in this tree, at most one per arity, listed in
    /// descending arity.
    std::vector<uint32_t> view_ids;
  };

  std::vector<TreeSpec> trees;
  /// view id -> index into `trees`.
  std::map<uint32_t, size_t> view_to_tree;
};

/// The paper's SelectMapping algorithm (Figure 5), extended to arity-0
/// views: group views by arity, and while any remain, open a new Cubetree
/// of dimensionality equal to the current maximum remaining arity and give
/// it one view of each arity (in FIFO order within an arity class, so
/// feeding views in decreasing selection benefit reproduces the paper's
/// Table 5 / Figure 7 allocations).
///
/// The resulting forest is minimal in the number of trees, and no tree
/// contains two views of the same arity — which guarantees every view
/// occupies a distinct contiguous run of leaves after packing.
ForestPlan SelectMapping(const std::vector<ViewDef>& views);

}  // namespace cubetree

#endif  // CUBETREE_CUBETREE_SELECT_MAPPING_H_
