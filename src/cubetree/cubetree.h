#ifndef CUBETREE_CUBETREE_CUBETREE_H_
#define CUBETREE_CUBETREE_CUBETREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cubetree/view_def.h"
#include "rtree/packed_rtree.h"

namespace cubetree {

/// One Cubetree: a packed R-tree together with the set of views it stores
/// (at most one per arity, per SelectMapping). Provides the view-level query
/// interface — translating a slice over a view into a range box in the
/// tree's index space, exactly the mapping of the paper's Figure 4.
///
/// Besides the main tree, a Cubetree may carry *delta trees*: small packed
/// trees holding recent refresh increments that have not been merge-packed
/// into the main tree yet. Queries search main and deltas and callers
/// combine aggregates of coinciding points; a compaction merge-packs
/// everything back into a single tree. This trades a little query work for
/// a refresh window proportional to the increment, not the whole view set.
///
/// The packed trees are held through shared_ptr so that several forest
/// generations can reference the same immutable tree file: a partial
/// refresh publishes a new Cubetree sharing the old main tree plus one more
/// delta, while snapshots pinned to the previous generation keep the old
/// object alive. A built tree is immutable, so concurrent QueryBox calls
/// from many threads are safe; the mutators (ReplaceTree/AddDelta/
/// TakeDeltas) are reserved for construction before the tree is published.
class Cubetree {
 public:
  Cubetree(std::vector<ViewDef> views, std::shared_ptr<PackedRTree> tree)
      : views_(std::move(views)), tree_(std::move(tree)) {}

  Cubetree(const Cubetree&) = delete;
  Cubetree& operator=(const Cubetree&) = delete;

  const std::vector<ViewDef>& views() const { return views_; }
  PackedRTree* rtree() { return tree_.get(); }
  const PackedRTree* rtree() const { return tree_.get(); }
  const std::shared_ptr<PackedRTree>& shared_rtree() const { return tree_; }
  uint8_t dims() const { return tree_->dims(); }

  /// Replaces the packed tree (after a merge-pack produced a new file).
  void ReplaceTree(std::shared_ptr<PackedRTree> tree) {
    tree_ = std::move(tree);
  }

  /// Attaches one more delta tree (most recent last).
  void AddDelta(std::shared_ptr<PackedRTree> delta) {
    deltas_.push_back(std::move(delta));
  }
  size_t num_deltas() const { return deltas_.size(); }
  bool HasDeltas() const { return !deltas_.empty(); }
  PackedRTree* delta(size_t i) { return deltas_[i].get(); }
  const std::vector<std::shared_ptr<PackedRTree>>& shared_deltas() const {
    return deltas_;
  }
  /// Drops all delta trees (after a compaction folded them into the main
  /// tree). Does not remove files.
  std::vector<std::shared_ptr<PackedRTree>> TakeDeltas() {
    return std::move(deltas_);
  }

  /// Bytes across the main tree and all delta trees.
  uint64_t TotalSizeBytes() const {
    uint64_t total = tree_->FileSizeBytes();
    for (const auto& d : deltas_) total += d->FileSizeBytes();
    return total;
  }
  /// Stored points across main + deltas (coinciding group keys counted
  /// once per tree they appear in).
  uint64_t TotalPoints() const {
    uint64_t total = tree_->num_points();
    for (const auto& d : deltas_) total += d->num_points();
    return total;
  }

  Result<const ViewDef*> FindView(uint32_t view_id) const;

  /// Arity of view `view_id`, or 0 if unknown (used as the packer's
  /// view_arity callback).
  uint8_t ViewArity(uint32_t view_id) const;

  /// Builds the query box of a slice over `view`: bindings[i] pins
  /// view.attrs[i] to an exact key, nullopt leaves it open. Coordinates
  /// beyond the view's arity are pinned to 0 and open coordinates to
  /// [1, max], so the box touches only this view's region of the tree.
  Result<Rect> SliceRect(
      uint32_t view_id,
      const std::vector<std::optional<Coord>>& bindings) const;

  /// Builds the query box from explicit per-attribute intervals
  /// (intervals.size() == the view's arity; use {1, kCoordMax} for an open
  /// attribute). Range predicates map to real intervals — the bounded
  /// boxes R-trees are best at.
  Result<Rect> BoxRect(
      uint32_t view_id,
      const std::vector<std::pair<Coord, Coord>>& intervals) const;

  /// Runs a slice query: emits (coords, agg) for each qualifying tuple of
  /// the view. Coordinates are in the view's attribute order.
  Status QuerySlice(uint32_t view_id,
                    const std::vector<std::optional<Coord>>& bindings,
                    const std::function<void(const Coord*, const AggValue&)>&
                        emit,
                    SearchStats* stats = nullptr);

  /// Box-query variant of QuerySlice with per-attribute intervals. Emits
  /// from the main tree and every delta tree; a group key present in
  /// several trees is emitted once per tree (callers aggregate).
  Status QueryBox(uint32_t view_id,
                  const std::vector<std::pair<Coord, Coord>>& intervals,
                  const std::function<void(const Coord*, const AggValue&)>&
                      emit,
                  SearchStats* stats = nullptr);

 private:
  std::vector<ViewDef> views_;
  std::shared_ptr<PackedRTree> tree_;
  std::vector<std::shared_ptr<PackedRTree>> deltas_;
};

/// Adapts a pack-order leaf scan of an existing tree into a PointSource
/// (the "old Cubetree" input of the merge-pack of Figure 15).
class ScannerPointSource : public PointSource {
 public:
  explicit ScannerPointSource(PackedRTree* tree) : scanner_(tree->ScanAll()) {}

  Status Next(const PointRecord** record) override {
    return scanner_.Next(record);
  }

 private:
  PackedRTree::Scanner scanner_;
};

}  // namespace cubetree

#endif  // CUBETREE_CUBETREE_CUBETREE_H_
