#include "cubetree/forest.h"

#include <cstdio>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/assert.h"
#include "cubetree/merge_pack.h"
#include "storage/page_manager.h"

namespace cubetree {

namespace {

/// Concatenates the record streams of several views (ascending arity) into
/// one pack-ordered PointSource. Ascending-arity concatenation IS pack
/// order across views: a view of arity a has zeros in every coordinate
/// >= a, so all its points precede every point of any higher-arity view.
class MultiViewPointSource : public PointSource {
 public:
  struct ViewStream {
    ViewDef view;
    std::unique_ptr<RecordStream> stream;
  };

  explicit MultiViewPointSource(std::vector<ViewStream> streams)
      : streams_(std::move(streams)) {}

  Status Next(const PointRecord** record) override {
    while (index_ < streams_.size()) {
      const char* raw = nullptr;
      CT_RETURN_NOT_OK(streams_[index_].stream->Next(&raw));
      if (raw != nullptr) {
        const ViewDef& view = streams_[index_].view;
        record_.view_id = view.id;
        DecodeViewRecord(raw, view.arity(), record_.coords, &record_.agg);
        for (size_t i = view.arity(); i < kMaxDims; ++i) {
          record_.coords[i] = 0;
        }
        *record = &record_;
        return Status::OK();
      }
      ++index_;
    }
    *record = nullptr;
    return Status::OK();
  }

 private:
  std::vector<ViewStream> streams_;
  size_t index_ = 0;
  PointRecord record_;
};

}  // namespace

Result<std::unique_ptr<CubetreeForest>> CubetreeForest::Create(
    Options options, BufferPool* pool, std::shared_ptr<IoStats> io_stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("forest: buffer pool required");
  }
  return std::unique_ptr<CubetreeForest>(
      new CubetreeForest(std::move(options), pool, std::move(io_stats)));
}

std::string CubetreeForest::TreePath(size_t tree_index,
                                     uint32_t generation) const {
  return options_.dir + "/" + options_.name + "_t" +
         std::to_string(tree_index) + "_g" + std::to_string(generation) +
         ".ctr";
}

std::string CubetreeForest::DeltaPath(size_t tree_index,
                                      uint32_t generation) const {
  return options_.dir + "/" + options_.name + "_t" +
         std::to_string(tree_index) + "_d" + std::to_string(generation) +
         ".ctr";
}

std::string CubetreeForest::ManifestPath() const {
  return options_.dir + "/" + options_.name + ".manifest";
}

Status CubetreeForest::SaveManifest() const {
  // Write-then-rename so the manifest swap is atomic: a crash mid-refresh
  // leaves the previous generation's manifest (and files) untouched.
  const std::string tmp = ManifestPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    out << "cubetree-forest-manifest v1\n";
    out << "views " << views_.size() << "\n";
    for (const ViewDef& v : views_) {
      out << "view " << v.id << " " << static_cast<int>(v.arity());
      for (uint32_t a : v.attrs) out << " " << a;
      out << "\n";
    }
    out << "trees " << plan_.trees.size() << "\n";
    for (size_t t = 0; t < plan_.trees.size(); ++t) {
      out << "tree " << static_cast<int>(plan_.trees[t].dims) << " "
          << generations_[t];
      for (uint32_t vid : plan_.trees[t].view_ids) out << " " << vid;
      out << "\n";
    }
    for (size_t t = 0; t < delta_generations_.size(); ++t) {
      for (uint32_t generation : delta_generations_[t]) {
        out << "delta " << t << " " << generation << "\n";
      }
    }
    if (!out.good()) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), ManifestPath().c_str()) != 0) {
    return Status::IOError("cannot rename manifest into place");
  }
  return Status::OK();
}

Result<std::unique_ptr<CubetreeForest>> CubetreeForest::Open(
    Options options, BufferPool* pool, std::shared_ptr<IoStats> io_stats) {
  CT_ASSIGN_OR_RETURN(auto forest,
                      Create(std::move(options), pool, std::move(io_stats)));
  std::ifstream in(forest->ManifestPath());
  if (!in) {
    return Status::NotFound("no forest manifest at " +
                            forest->ManifestPath());
  }
  std::string line;
  if (!std::getline(in, line) || line != "cubetree-forest-manifest v1") {
    return Status::Corruption("bad forest manifest header");
  }
  auto malformed = [] { return Status::Corruption("malformed manifest"); };
  std::string word;
  size_t num_views = 0;
  if (!(in >> word >> num_views) || word != "views") return malformed();
  for (size_t i = 0; i < num_views; ++i) {
    ViewDef v;
    int arity = 0;
    if (!(in >> word >> v.id >> arity) || word != "view" || arity < 0 ||
        arity > static_cast<int>(kMaxDims)) {
      return malformed();
    }
    for (int a = 0; a < arity; ++a) {
      uint32_t attr;
      if (!(in >> attr)) return malformed();
      v.attrs.push_back(attr);
    }
    forest->views_.push_back(v);
    if (!forest->views_by_id_.emplace(v.id, v).second) return malformed();
  }
  size_t num_trees = 0;
  if (!(in >> word >> num_trees) || word != "trees") return malformed();
  for (size_t t = 0; t < num_trees; ++t) {
    int dims = 0;
    uint32_t generation = 0;
    if (!(in >> word >> dims >> generation) || word != "tree") {
      return malformed();
    }
    ForestPlan::TreeSpec spec;
    spec.dims = static_cast<uint8_t>(dims);
    // The rest of the line holds the view ids.
    std::getline(in, line);
    std::istringstream ids(line);
    uint32_t vid;
    std::vector<ViewDef> tree_views;
    while (ids >> vid) {
      auto it = forest->views_by_id_.find(vid);
      if (it == forest->views_by_id_.end()) return malformed();
      spec.view_ids.push_back(vid);
      tree_views.push_back(it->second);
      forest->plan_.view_to_tree[vid] = t;
    }
    forest->plan_.trees.push_back(std::move(spec));
    forest->generations_.push_back(generation);
    CT_ASSIGN_OR_RETURN(auto rtree,
                        PackedRTree::Open(forest->TreePath(t, generation),
                                          pool, forest->io_stats_));
    forest->trees_.push_back(std::make_unique<Cubetree>(
        std::move(tree_views), std::move(rtree)));
  }
  forest->delta_generations_.assign(num_trees, {});
  forest->next_delta_generation_.assign(num_trees, 0);
  while (in >> word) {
    if (word != "delta") return malformed();
    size_t tree_index = 0;
    uint32_t generation = 0;
    if (!(in >> tree_index >> generation) ||
        tree_index >= forest->trees_.size()) {
      return malformed();
    }
    CT_ASSIGN_OR_RETURN(
        auto delta_tree,
        PackedRTree::Open(forest->DeltaPath(tree_index, generation), pool,
                          forest->io_stats_));
    forest->trees_[tree_index]->AddDelta(std::move(delta_tree));
    forest->delta_generations_[tree_index].push_back(generation);
    forest->next_delta_generation_[tree_index] =
        std::max(forest->next_delta_generation_[tree_index], generation + 1);
  }
  return forest;
}

std::vector<const ViewDef*> CubetreeForest::TreeViewsAscArity(
    size_t tree_index) const {
  std::vector<const ViewDef*> result;
  for (uint32_t vid : plan_.trees[tree_index].view_ids) {
    result.push_back(&views_by_id_.at(vid));
  }
  std::sort(result.begin(), result.end(),
            [](const ViewDef* a, const ViewDef* b) {
              return a->arity() < b->arity();
            });
  return result;
}

std::function<uint8_t(uint32_t)> CubetreeForest::ArityFn() const {
  // Capture a by-value arity map so the callback stays valid.
  std::map<uint32_t, uint8_t> arities;
  for (const auto& [id, view] : views_by_id_) arities[id] = view.arity();
  return [arities](uint32_t view_id) {
    auto it = arities.find(view_id);
    return it == arities.end() ? static_cast<uint8_t>(0) : it->second;
  };
}

Status CubetreeForest::Build(const std::vector<ViewDef>& views,
                             ViewDataProvider* provider) {
  if (!trees_.empty()) {
    return Status::InvalidArgument("forest: already built");
  }
  views_ = views;
  for (const ViewDef& v : views_) {
    if (!views_by_id_.emplace(v.id, v).second) {
      return Status::InvalidArgument("forest: duplicate view id");
    }
  }
  if (options_.one_tree_per_view) {
    for (const ViewDef& v : views_) {
      ForestPlan::TreeSpec spec;
      spec.dims = std::max<uint8_t>(1, v.arity());
      spec.view_ids = {v.id};
      plan_.view_to_tree[v.id] = plan_.trees.size();
      plan_.trees.push_back(std::move(spec));
    }
  } else {
    plan_ = SelectMapping(views_);
  }
  if (CT_DCHECK_IS_ON()) {
    // Whichever planner ran, the SelectMapping invariant must hold: every
    // view placed exactly once, at most one view per arity per tree.
    std::set<uint32_t> placed;
    for (const ForestPlan::TreeSpec& spec : plan_.trees) {
      std::set<uint8_t> arities;
      for (uint32_t vid : spec.view_ids) {
        CT_DCHECK(placed.insert(vid).second)
            << "view " << vid << " placed in two trees";
        CT_DCHECK(arities.insert(views_by_id_.at(vid).arity()).second)
            << "two views of one arity share a tree";
      }
    }
    CT_DCHECK(placed.size() == views_.size()) << "plan left a view unplaced";
  }
  generations_.assign(plan_.trees.size(), 0);
  delta_generations_.assign(plan_.trees.size(), {});
  next_delta_generation_.assign(plan_.trees.size(), 0);

  for (size_t t = 0; t < plan_.trees.size(); ++t) {
    std::vector<MultiViewPointSource::ViewStream> streams;
    for (const ViewDef* view : TreeViewsAscArity(t)) {
      CT_ASSIGN_OR_RETURN(auto stream, provider->OpenViewStream(*view));
      streams.push_back({*view, std::move(stream)});
    }
    MultiViewPointSource source(std::move(streams));
    RTreeOptions tree_options = options_.rtree;
    tree_options.dims = plan_.trees[t].dims;
    CT_ASSIGN_OR_RETURN(
        auto rtree,
        PackedRTree::Build(TreePath(t, 0), tree_options, pool_, &source,
                           ArityFn(), io_stats_));
    std::vector<ViewDef> tree_views;
    for (uint32_t vid : plan_.trees[t].view_ids) {
      tree_views.push_back(views_by_id_.at(vid));
    }
    trees_.push_back(
        std::make_unique<Cubetree>(std::move(tree_views), std::move(rtree)));
  }
  return SaveManifest();
}

Result<std::unique_ptr<PointSource>> CubetreeForest::MakeDeltaSource(
    size_t tree_index, ViewDataProvider* provider) {
  std::vector<MultiViewPointSource::ViewStream> streams;
  for (const ViewDef* view : TreeViewsAscArity(tree_index)) {
    CT_ASSIGN_OR_RETURN(auto stream, provider->OpenViewStream(*view));
    streams.push_back({*view, std::move(stream)});
  }
  return std::unique_ptr<PointSource>(
      new MultiViewPointSource(std::move(streams)));
}

namespace {

/// Owns a chain of pairwise merges over N pack-ordered sources.
class ChainedMergeSource {
 public:
  ChainedMergeSource(std::vector<PointSource*> inputs, uint8_t dims) {
    head_ = inputs.empty() ? nullptr : inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i) {
      merges_.push_back(
          std::make_unique<MergePointSource>(head_, inputs[i], dims));
      head_ = merges_.back().get();
    }
  }

  PointSource* head() { return head_; }

 private:
  std::vector<std::unique_ptr<MergePointSource>> merges_;
  PointSource* head_ = nullptr;
};

}  // namespace

Status CubetreeForest::ApplyDelta(ViewDataProvider* delta_provider) {
  if (trees_.empty()) {
    return Status::InvalidArgument("forest: not built yet");
  }
  for (size_t t = 0; t < trees_.size(); ++t) {
    CT_ASSIGN_OR_RETURN(auto delta, MakeDeltaSource(t, delta_provider));

    // Fold any pending delta trees into the same merge-pack.
    ScannerPointSource main_source(trees_[t]->rtree());
    std::vector<std::unique_ptr<ScannerPointSource>> delta_scans;
    std::vector<PointSource*> inputs = {&main_source};
    for (size_t d = 0; d < trees_[t]->num_deltas(); ++d) {
      delta_scans.push_back(
          std::make_unique<ScannerPointSource>(trees_[t]->delta(d)));
      inputs.push_back(delta_scans.back().get());
    }
    inputs.push_back(delta.get());
    const uint8_t dims = plan_.trees[t].dims;
    ChainedMergeSource chain(inputs, dims);

    const uint32_t new_generation = generations_[t] + 1;
    const std::string old_path = trees_[t]->rtree()->path();
    RTreeOptions tree_options = options_.rtree;
    tree_options.dims = dims;
    CT_ASSIGN_OR_RETURN(
        auto rtree,
        PackedRTree::Build(TreePath(t, new_generation), tree_options, pool_,
                           chain.head(), ArityFn(), io_stats_));
    std::vector<std::string> retired = {old_path};
    for (auto& old_delta : trees_[t]->TakeDeltas()) {
      retired.push_back(old_delta->path());
      old_delta.reset();
    }
    delta_generations_[t].clear();
    trees_[t]->ReplaceTree(std::move(rtree));
    generations_[t] = new_generation;
    // Manifest first, then reclaim old generations: a crash in between
    // only leaks files, never loses a consistent forest.
    CT_RETURN_NOT_OK(SaveManifest());
    for (const std::string& path : retired) {
      CT_RETURN_NOT_OK(RemoveFileIfExists(path));
    }
  }
  return Status::OK();
}

Status CubetreeForest::ApplyDeltaPartial(ViewDataProvider* delta_provider) {
  if (trees_.empty()) {
    return Status::InvalidArgument("forest: not built yet");
  }
  for (size_t t = 0; t < trees_.size(); ++t) {
    CT_ASSIGN_OR_RETURN(auto delta, MakeDeltaSource(t, delta_provider));
    const uint32_t generation = next_delta_generation_[t]++;
    RTreeOptions tree_options = options_.rtree;
    tree_options.dims = plan_.trees[t].dims;
    CT_ASSIGN_OR_RETURN(
        auto delta_tree,
        PackedRTree::Build(DeltaPath(t, generation), tree_options, pool_,
                           delta.get(), ArityFn(), io_stats_));
    if (delta_tree->num_points() == 0) {
      // Nothing in this tree's increment; drop the empty file.
      const std::string path = delta_tree->path();
      delta_tree.reset();
      CT_RETURN_NOT_OK(RemoveFileIfExists(path));
      continue;
    }
    trees_[t]->AddDelta(std::move(delta_tree));
    delta_generations_[t].push_back(generation);
  }
  return SaveManifest();
}

Status CubetreeForest::Compact() {
  if (trees_.empty()) {
    return Status::InvalidArgument("forest: not built yet");
  }
  struct EmptyProvider : ViewDataProvider {
    Result<std::unique_ptr<RecordStream>> OpenViewStream(
        const ViewDef& view) override {
      return std::unique_ptr<RecordStream>(new MemoryRecordStream(
          {}, ViewRecordBytes(view.arity())));
    }
  } empty;
  // ApplyDelta with an empty increment folds all pending deltas in.
  return ApplyDelta(&empty);
}

size_t CubetreeForest::TotalDeltas() const {
  size_t total = 0;
  for (const auto& tree : trees_) total += tree->num_deltas();
  return total;
}

Result<Cubetree*> CubetreeForest::TreeForView(uint32_t view_id) {
  auto it = plan_.view_to_tree.find(view_id);
  if (it == plan_.view_to_tree.end()) {
    return Status::NotFound("forest: view not materialized");
  }
  return trees_[it->second].get();
}

Result<const ViewDef*> CubetreeForest::view(uint32_t view_id) const {
  auto it = views_by_id_.find(view_id);
  if (it == views_by_id_.end()) {
    return Status::NotFound("forest: unknown view id");
  }
  return &it->second;
}

uint64_t CubetreeForest::TotalSizeBytes() const {
  uint64_t total = 0;
  for (const auto& tree : trees_) total += tree->TotalSizeBytes();
  return total;
}

uint64_t CubetreeForest::TotalPoints() const {
  uint64_t total = 0;
  for (const auto& tree : trees_) total += tree->TotalPoints();
  return total;
}

Status CubetreeForest::Destroy() {
  for (auto& tree : trees_) {
    std::vector<std::string> paths = {tree->rtree()->path()};
    for (size_t d = 0; d < tree->num_deltas(); ++d) {
      paths.push_back(tree->delta(d)->path());
    }
    tree.reset();
    for (const std::string& path : paths) {
      CT_RETURN_NOT_OK(RemoveFileIfExists(path));
    }
  }
  trees_.clear();
  return RemoveFileIfExists(ManifestPath());
}

}  // namespace cubetree
