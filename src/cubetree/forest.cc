#include "cubetree/forest.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>

#include "check/checkers.h"
#include "check/invariant_checker.h"
#include "common/assert.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "cubetree/merge_pack.h"
#include "common/timer.h"
#include "engine/wal.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/checksum.h"
#include "storage/disk_space.h"
#include "storage/page_manager.h"

namespace cubetree {

namespace {

/// Concatenates the record streams of several views (ascending arity) into
/// one pack-ordered PointSource. Ascending-arity concatenation IS pack
/// order across views: a view of arity a has zeros in every coordinate
/// >= a, so all its points precede every point of any higher-arity view.
class MultiViewPointSource : public PointSource {
 public:
  struct ViewStream {
    ViewDef view;
    std::unique_ptr<RecordStream> stream;
  };

  explicit MultiViewPointSource(std::vector<ViewStream> streams)
      : streams_(std::move(streams)) {}

  Status Next(const PointRecord** record) override {
    while (index_ < streams_.size()) {
      const char* raw = nullptr;
      CT_RETURN_NOT_OK(streams_[index_].stream->Next(&raw));
      if (raw != nullptr) {
        const ViewDef& view = streams_[index_].view;
        record_.view_id = view.id;
        DecodeViewRecord(raw, view.arity(), record_.coords, &record_.agg);
        for (size_t i = view.arity(); i < kMaxDims; ++i) {
          record_.coords[i] = 0;
        }
        *record = &record_;
        return Status::OK();
      }
      ++index_;
    }
    *record = nullptr;
    return Status::OK();
  }

 private:
  std::vector<ViewStream> streams_;
  size_t index_ = 0;
  PointRecord record_;
};

/// Wraps a PointSource with cooperative cancellation: when a sibling
/// refresh worker fails, the shared CancelFlag flips and every other
/// worker's merge-pack aborts at its next poll instead of finishing a tree
/// that is about to be thrown away. Polling every 1024 records keeps the
/// per-record cost to a predictable branch.
class CancellablePointSource : public PointSource {
 public:
  CancellablePointSource(PointSource* inner, const CancelFlag* cancel)
      : inner_(inner), cancel_(cancel) {}

  Status Next(const PointRecord** record) override {
    if ((++polls_ & 1023u) == 0 && cancel_->cancelled()) {
      return Status::Cancelled(
          "forest: refresh cancelled by sibling worker failure");
    }
    return inner_->Next(record);
  }

 private:
  PointSource* inner_;
  const CancelFlag* cancel_;
  uint64_t polls_ = 0;
};

/// Sets `path` aside under a ".quarantine" suffix. Best effort: a rename
/// failure is logged, and the original path is left for a later recovery
/// pass. Returns the new path on success.
bool SetAsideQuarantined(const std::string& path, std::string* aside) {
  *aside = path + ".quarantine";
  // Not a commit point: best-effort tidying of an already-quarantined
  // file; crash coverage lives at the manifest swap.
  // ct-lint: allow(fault-pair)
  if (std::rename(path.c_str(), aside->c_str()) != 0) {
    CT_LOG(Warn) << "forest: cannot quarantine " << path << ": "
                 << std::strerror(errno);
    return false;
  }
  return true;
}

/// Sets aside `path` and its checksum sidecar, recording the aside names
/// for the post-rebuild cleanup. The sidecar follows its data file so a
/// rebuilt generation never pairs with stale checksums.
void SetAsideWithSidecar(const std::string& path,
                         std::vector<std::string>* aside_files) {
  std::string aside;
  if (FileExists(path) && SetAsideQuarantined(path, &aside)) {
    aside_files->push_back(aside);
  }
  const std::string sidecar = ChecksumSidecarPath(path);
  if (FileExists(sidecar) && SetAsideQuarantined(sidecar, &aside)) {
    aside_files->push_back(aside);
  }
}

/// Best-effort removal of a tree file plus its checksum sidecar on refresh
/// abort paths; failures only leave orphans for recovery's sweep.
void RemoveTreeFileBestEffort(const std::string& path, const char* what) {
  for (const std::string& p : {path, ChecksumSidecarPath(path)}) {
    Status removed = RemoveFileIfExists(p);
    if (!removed.ok()) {
      CT_LOG(Warn) << "forest: " << what << ": " << removed.ToString();
    }
  }
}

}  // namespace

namespace forest_internal {

namespace {

/// Depth of the deferred-unlink backlog: files retired from a published
/// generation but still pinned by in-flight readers.
obs::Gauge* GcBacklogGauge() {
  static obs::Gauge* const gauge =
      obs::MetricsRegistry::Instance().GetGauge("forest.gc_deferred_unlinks");
  return gauge;
}

}  // namespace

TrackedFile::TrackedFile(std::string path, std::shared_ptr<GcShared> gc)
    : path_(std::move(path)), gc_(std::move(gc)) {
  MutexLock lock(gc_->mu);
  gc_->tracked_paths.insert(path_);
}

void TrackedFile::Retire() {
  if (retired_.exchange(true, std::memory_order_relaxed)) return;
  {
    MutexLock lock(gc_->mu);
    ++gc_->unreclaimed_files;
  }
  GcBacklogGauge()->Add(1);
  // The GC failpoint is consulted here, at the retirement decision, rather
  // than in the destructor: throw/crash actions must fire in a normal call
  // context (inside the refresh), never during unwinding.
  if (FaultInjector::AnyArmed()) {
    FaultOutcome outcome = FaultInjector::Instance().Check("forest.refresh.gc");
    if (outcome.fail) {
      CT_LOG(Warn) << "forest: refresh GC skipped " << path_ << ": "
                   << outcome.ToStatus().ToString();
      // Leave the file for recovery's orphan sweep.
      leaked_.store(true, std::memory_order_relaxed);
    }
  }
}

TrackedFile::~TrackedFile() {
  {
    // The token is dying on every path below, so the path loses its
    // protection from the online reclaim sweep either way: a leaked file
    // becomes sweepable (that is how it is reclaimed without a restart),
    // an unlinked one is gone, an unretired one is still in the live set.
    MutexLock lock(gc_->mu);
    gc_->tracked_paths.erase(path_);
  }
  // Unretired: the file is live and the forest is shutting down — keep it.
  if (!retired_.load(std::memory_order_relaxed) ||
      leaked_.load(std::memory_order_relaxed)) {
    return;
  }
  // Raw unlink, not RemoveFileIfExists: this destructor may run on a reader
  // thread releasing the last snapshot, and must not throw (failpoints on
  // the shared remove helper may).
  if (::unlink(path_.c_str()) != 0 && errno != ENOENT) {
    CT_LOG(Warn) << "forest: refresh GC: unlink " << path_ << ": "
                 << std::strerror(errno);
    return;
  }
  // The checksum sidecar shadows its data file through reclamation. A
  // failure only leaves an orphan for recovery's sweep.
  const std::string sidecar = ChecksumSidecarPath(path_);
  if (::unlink(sidecar.c_str()) != 0 && errno != ENOENT) {
    CT_LOG(Warn) << "forest: refresh GC: unlink " << sidecar << ": "
                 << std::strerror(errno);
  }
  {
    MutexLock lock(gc_->mu);
    --gc_->unreclaimed_files;
    ++gc_->reclaimed_files;
  }
  GcBacklogGauge()->Add(-1);
}

EpochState::~EpochState() {
  if (gc == nullptr || !retired.load(std::memory_order_relaxed)) return;
  MutexLock lock(gc->mu);
  gc->pinned_retired_epochs.erase(epoch);
}

}  // namespace forest_internal

bool ForestSnapshot::IsViewQuarantined(uint32_t view_id) const {
  auto it = state_->view_to_tree.find(view_id);
  if (it == state_->view_to_tree.end()) return false;
  return it->second < state_->quarantined.size() &&
         state_->quarantined[it->second];
}

Result<Cubetree*> ForestSnapshot::TreeForView(uint32_t view_id) const {
  auto it = state_->view_to_tree.find(view_id);
  if (it == state_->view_to_tree.end()) {
    return Status::NotFound("forest: view not materialized");
  }
  if (state_->quarantined[it->second]) {
    return Status::Unavailable("forest: view " + std::to_string(view_id) +
                               " is quarantined awaiting rebuild");
  }
  return state_->trees[it->second].get();
}

uint64_t ForestSnapshot::TotalPoints() const {
  uint64_t total = 0;
  for (const auto& tree : state_->trees) {
    if (tree) total += tree->TotalPoints();
  }
  return total;
}

std::string ForestRecoveryReport::ToString() const {
  std::ostringstream out;
  out << "recovery: journal="
      << (journal_found ? (refresh_in_flight ? "in-flight" : "committed")
                        : "none")
      << " orphans_removed=" << removed_orphans.size()
      << " quarantined_trees=" << quarantined_trees.size();
  for (const std::string& note : notes) out << "\n  " << note;
  return out.str();
}

Result<std::unique_ptr<CubetreeForest>> CubetreeForest::Create(
    Options options, BufferPool* pool, std::shared_ptr<IoStats> io_stats) {
  if (pool == nullptr) {
    return Status::InvalidArgument("forest: buffer pool required");
  }
  return std::unique_ptr<CubetreeForest>(
      new CubetreeForest(std::move(options), pool, std::move(io_stats)));
}

std::string CubetreeForest::TreePath(size_t tree_index,
                                     uint32_t generation) const {
  return options_.dir + "/" + options_.name + "_t" +
         std::to_string(tree_index) + "_g" + std::to_string(generation) +
         ".ctr";
}

std::string CubetreeForest::DeltaPath(size_t tree_index,
                                      uint32_t generation) const {
  return options_.dir + "/" + options_.name + "_t" +
         std::to_string(tree_index) + "_d" + std::to_string(generation) +
         ".ctr";
}

std::string CubetreeForest::ManifestPath() const {
  return options_.dir + "/" + options_.name + ".manifest";
}

std::string CubetreeForest::JournalPath() const {
  return options_.dir + "/" + options_.name + ".refresh.wal";
}

std::string CubetreeForest::SerializeManifest(
    const std::vector<uint32_t>& generations,
    const std::vector<std::vector<uint32_t>>& delta_generations) const {
  std::ostringstream out;
  // v2 adds the `checksums` line: every tree file this manifest names was
  // built with a checksum sidecar, and the loader refuses to serve a tree
  // whose sidecar is missing or invalid. v1 manifests (no line) stay
  // loadable with verification off, for files built before checksums.
  out << "cubetree-forest-manifest v2\n";
  out << "checksums 1\n";
  out << "views " << views_.size() << "\n";
  for (const ViewDef& v : views_) {
    out << "view " << v.id << " " << static_cast<int>(v.arity());
    for (uint32_t a : v.attrs) out << " " << a;
    out << "\n";
  }
  out << "trees " << plan_.trees.size() << "\n";
  for (size_t t = 0; t < plan_.trees.size(); ++t) {
    out << "tree " << static_cast<int>(plan_.trees[t].dims) << " "
        << generations[t];
    for (uint32_t vid : plan_.trees[t].view_ids) out << " " << vid;
    out << "\n";
  }
  for (size_t t = 0; t < delta_generations.size(); ++t) {
    for (uint32_t generation : delta_generations[t]) {
      out << "delta " << t << " " << generation << "\n";
    }
  }
  return out.str();
}

Status CubetreeForest::SaveManifestDurable(
    const std::vector<uint32_t>& generations,
    const std::vector<std::vector<uint32_t>>& delta_generations) const {
  // The manifest names tree files, so those files must be durable before
  // the manifest can point at them (PackedRTree::Build fsyncs). The swap
  // itself: write tmp -> fsync(tmp) -> fsync(dir) -> rename -> fsync(dir).
  // A crash anywhere before the rename leaves the old manifest in effect;
  // after it, the new one. There is no in-between.
  const std::string data = SerializeManifest(generations, delta_generations);
  const std::string tmp = ManifestPath() + ".tmp";
  CT_FAULT("forest.manifest.create");
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("create " + tmp + ": " + std::strerror(errno));
  }
  Status status;
  if (FaultInjector::AnyArmed()) {
    status = FaultInjector::Instance().MaybeFail("forest.manifest.write");
  }
  if (status.ok()) status = PwriteFully(fd, data.data(), data.size(), 0, tmp);
  if (status.ok() && FaultInjector::AnyArmed()) {
    status = FaultInjector::Instance().MaybeFail("forest.manifest.sync");
  }
  if (status.ok()) status = SyncFd(fd, tmp);
  ::close(fd);
  if (status.ok()) status = SyncDir(options_.dir);
  if (status.ok() && FaultInjector::AnyArmed()) {
    status = FaultInjector::Instance().MaybeFail("forest.manifest.rename");
  }
  if (!status.ok()) return status;
  if (std::rename(tmp.c_str(), ManifestPath().c_str()) != 0) {
    return Status::IOError("rename " + tmp + ": " + std::strerror(errno));
  }
  // Commit point. The rename is visible; failing the caller now would make
  // it believe the old state is still in effect, so later problems are
  // logged instead of returned. (A real power cut before this directory
  // sync lands is equivalent to crashing before the rename — recovery
  // handles either generation.)
  if (FaultInjector::AnyArmed()) {
    FaultOutcome outcome =
        FaultInjector::Instance().Check("forest.manifest.dirsync");
    if (outcome.fail) {
      CT_LOG(Warn) << "forest: manifest dirsync skipped: "
                   << outcome.ToStatus().ToString();
      return Status::OK();
    }
  }
  Status synced = SyncDir(options_.dir);
  if (!synced.ok()) {
    CT_LOG(Warn) << "forest: manifest dirsync: " << synced.ToString();
  }
  return Status::OK();
}

Status CubetreeForest::SaveManifest() const {
  return SaveManifestDurable(generations_, delta_generations_);
}

Status CubetreeForest::LoadManifest(bool tolerant,
                                    ForestRecoveryReport* report) {
  std::ifstream in(ManifestPath());
  if (!in) {
    return Status::NotFound("no forest manifest at " + ManifestPath());
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("bad forest manifest header");
  }
  bool expect_checksums = false;
  if (line == "cubetree-forest-manifest v2") {
    expect_checksums = true;
  } else if (line != "cubetree-forest-manifest v1") {
    return Status::Corruption("bad forest manifest header");
  }
  auto malformed = [] { return Status::Corruption("malformed manifest"); };
  std::string word;
  if (expect_checksums) {
    int flag = 0;
    if (!(in >> word >> flag) || word != "checksums") return malformed();
    expect_checksums = flag != 0;
  }
  size_t num_views = 0;
  if (!(in >> word >> num_views) || word != "views") return malformed();
  for (size_t i = 0; i < num_views; ++i) {
    ViewDef v;
    int arity = 0;
    if (!(in >> word >> v.id >> arity) || word != "view" || arity < 0 ||
        arity > static_cast<int>(kMaxDims)) {
      return malformed();
    }
    for (int a = 0; a < arity; ++a) {
      uint32_t attr;
      if (!(in >> attr)) return malformed();
      v.attrs.push_back(attr);
    }
    views_.push_back(v);
    if (!views_by_id_.emplace(v.id, v).second) return malformed();
  }
  size_t num_trees = 0;
  if (!(in >> word >> num_trees) || word != "trees") return malformed();
  std::vector<Status> main_failures;
  for (size_t t = 0; t < num_trees; ++t) {
    int dims = 0;
    uint32_t generation = 0;
    if (!(in >> word >> dims >> generation) || word != "tree") {
      return malformed();
    }
    ForestPlan::TreeSpec spec;
    spec.dims = static_cast<uint8_t>(dims);
    // The rest of the line holds the view ids.
    std::getline(in, line);
    std::istringstream ids(line);
    uint32_t vid;
    std::vector<ViewDef> tree_views;
    while (ids >> vid) {
      auto it = views_by_id_.find(vid);
      if (it == views_by_id_.end()) return malformed();
      spec.view_ids.push_back(vid);
      tree_views.push_back(it->second);
      plan_.view_to_tree[vid] = t;
    }
    plan_.trees.push_back(std::move(spec));
    generations_.push_back(generation);
    const std::string tree_path = TreePath(t, generation);
    auto rtree = PackedRTree::Open(tree_path, pool_, io_stats_);
    Status opened = rtree.status();
    if (opened.ok() && expect_checksums &&
        !rtree.value()->checksums_enabled()) {
      // A v2 manifest promises a sidecar for every file it names; a
      // missing one means the file set was tampered with or torn.
      opened = Status::Corruption("missing checksum sidecar for " +
                                  ChecksumSidecarPath(tree_path));
    }
    if (opened.ok()) {
      trees_.push_back(std::make_shared<Cubetree>(std::move(tree_views),
                                                  std::move(rtree).value()));
      main_failures.push_back(Status::OK());
    } else if (tolerant) {
      trees_.push_back(nullptr);
      main_failures.push_back(opened);
    } else {
      return opened;
    }
  }
  delta_generations_.assign(num_trees, {});
  next_delta_generation_.assign(num_trees, 0);
  quarantined_.assign(num_trees, false);
  quarantine_files_.assign(num_trees, {});
  for (size_t t = 0; t < num_trees; ++t) {
    if (!main_failures[t].ok()) quarantined_[t] = true;
  }
  while (in >> word) {
    if (word != "delta") return malformed();
    size_t tree_index = 0;
    uint32_t generation = 0;
    if (!(in >> tree_index >> generation) || tree_index >= trees_.size()) {
      return malformed();
    }
    next_delta_generation_[tree_index] =
        std::max(next_delta_generation_[tree_index], generation + 1);
    if (quarantined_[tree_index]) {
      // The tree is already out of service; set its delta file aside too.
      SetAsideWithSidecar(DeltaPath(tree_index, generation),
                          &quarantine_files_[tree_index]);
      continue;
    }
    delta_generations_[tree_index].push_back(generation);
    const std::string delta_path = DeltaPath(tree_index, generation);
    auto delta_tree = PackedRTree::Open(delta_path, pool_, io_stats_);
    Status delta_opened = delta_tree.status();
    if (delta_opened.ok() && expect_checksums &&
        !delta_tree.value()->checksums_enabled()) {
      delta_opened = Status::Corruption("missing checksum sidecar for " +
                                        ChecksumSidecarPath(delta_path));
    }
    if (delta_opened.ok()) {
      trees_[tree_index]->AddDelta(std::move(delta_tree).value());
    } else if (tolerant) {
      QuarantineTree(tree_index, delta_opened, report);
    } else {
      return delta_opened;
    }
  }
  // Finish quarantining trees whose main file would not open: set aside
  // whatever is left of them and record the event.
  for (size_t t = 0; t < num_trees; ++t) {
    if (main_failures[t].ok()) continue;
    SetAsideWithSidecar(TreePath(t, generations_[t]), &quarantine_files_[t]);
    if (report != nullptr) {
      report->quarantined_trees.push_back(t);
      for (uint32_t vid : plan_.trees[t].view_ids) {
        report->quarantined_views.push_back(vid);
      }
      report->notes.push_back("quarantined tree " + std::to_string(t) +
                              ": " + main_failures[t].ToString());
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<CubetreeForest>> CubetreeForest::Open(
    Options options, BufferPool* pool, std::shared_ptr<IoStats> io_stats) {
  CT_ASSIGN_OR_RETURN(auto forest,
                      Create(std::move(options), pool, std::move(io_stats)));
  MutexLock lock(forest->refresh_mu_);
  CT_RETURN_NOT_OK(forest->LoadManifest(/*tolerant=*/false, nullptr));
  forest->PublishState();
  return forest;
}

void CubetreeForest::QuarantineTree(size_t t, const Status& why,
                                    ForestRecoveryReport* report) {
  std::vector<std::string> paths = {TreePath(t, generations_[t])};
  for (uint32_t g : delta_generations_[t]) paths.push_back(DeltaPath(t, g));
  // Close before renaming so the buffer pool drops the file's pages.
  trees_[t].reset();
  delta_generations_[t].clear();
  quarantined_[t] = true;
  for (const std::string& path : paths) {
    SetAsideWithSidecar(path, &quarantine_files_[t]);
  }
  if (report != nullptr) {
    report->quarantined_trees.push_back(t);
    for (uint32_t vid : plan_.trees[t].view_ids) {
      report->quarantined_views.push_back(vid);
    }
    report->notes.push_back("quarantined tree " + std::to_string(t) + ": " +
                            why.ToString());
  }
}

void CubetreeForest::RemoveOrphan(const std::string& path,
                                  ForestRecoveryReport* report) {
  if (FaultInjector::AnyArmed()) {
    FaultOutcome outcome = FaultInjector::Instance().Check("forest.recover.gc");
    if (outcome.fail) {
      CT_LOG(Warn) << "forest: recovery GC skipped " << path << ": "
                   << outcome.ToStatus().ToString();
      return;
    }
  }
  Status removed = RemoveFileIfExists(path);
  if (!removed.ok()) {
    CT_LOG(Warn) << "forest: recovery GC: " << removed.ToString();
    return;
  }
  if (report != nullptr) report->removed_orphans.push_back(path);
}

Result<std::unique_ptr<CubetreeForest>> CubetreeForest::Recover(
    Options options, BufferPool* pool, std::shared_ptr<IoStats> io_stats,
    ForestRecoveryReport* report, RecoverOptions recover) {
  CT_ASSIGN_OR_RETURN(auto forest,
                      Create(std::move(options), pool, std::move(io_stats)));
  ForestRecoveryReport local_report;
  if (report == nullptr) report = &local_report;

  // 1. Refresh journal: replay it (tolerantly — the crash may have torn
  // its tail) to learn whether a refresh was in flight, then retire it.
  // The journal is advisory; correctness rests on the atomic manifest swap
  // plus the directory sweep below.
  const std::string journal = forest->JournalPath();
  if (FileExists(journal)) {
    report->journal_found = true;
    bool saw_commit = false;
    auto replayed = WriteAheadLog::ReplayTolerant(
        journal, [&saw_commit](const char* data, size_t size) {
          if (std::string_view(data, size) == "commit") saw_commit = true;
        });
    if (replayed.ok()) {
      report->journal_records = replayed->records;
      report->refresh_in_flight = !saw_commit;
      if (replayed->torn) {
        report->notes.push_back(
            "refresh journal had a torn tail (" +
            std::to_string(replayed->torn_bytes) + " bytes discarded)");
      }
    } else {
      report->refresh_in_flight = true;
      report->notes.push_back("refresh journal unreadable: " +
                              replayed.status().ToString());
    }
    forest->RemoveOrphan(journal, report);
  }

  // 2. Load the manifest, quarantining any tree that will not open. The
  // forest is not yet visible to other threads; the lock covers the whole
  // remaining recovery so the guarded state is built under it.
  MutexLock lock(forest->refresh_mu_);
  CT_RETURN_NOT_OK(forest->LoadManifest(/*tolerant=*/true, report));

  // 3. Deep-check the trees that did open; quarantine the ones that fail
  // their invariants (a torn page write can leave an openable but
  // inconsistent file).
  if (recover.deep_check) {
    for (size_t t = 0; t < forest->trees_.size(); ++t) {
      if (forest->trees_[t] == nullptr) continue;
      std::vector<std::string> paths = {
          forest->TreePath(t, forest->generations_[t])};
      for (uint32_t g : forest->delta_generations_[t]) {
        paths.push_back(forest->DeltaPath(t, g));
      }
      Status verdict;
      for (const std::string& path : paths) {
        RTreeChecker checker(path, CheckOptions{/*deep=*/true},
                             forest->ArityFn());
        CheckReport check_report;
        verdict = checker.Run(&check_report);
        if (verdict.ok() && !check_report.clean()) {
          verdict = Status::Corruption("invariant check failed for " + path);
        }
        if (!verdict.ok()) break;
      }
      if (!verdict.ok()) forest->QuarantineTree(t, verdict, report);
    }
  }

  // 4. Sweep the directory: any tree-generation file of this forest the
  // manifest does not reference is the debris of an interrupted refresh
  // (either the half-built next generation or the un-reclaimed previous
  // one) — as is a stale manifest tmp. ".quarantine" files are kept for
  // RebuildQuarantined.
  std::set<std::string> live;
  for (size_t t = 0; t < forest->trees_.size(); ++t) {
    if (forest->trees_[t] == nullptr) continue;
    live.insert(forest->TreePath(t, forest->generations_[t]));
    for (uint32_t g : forest->delta_generations_[t]) {
      live.insert(forest->DeltaPath(t, g));
    }
  }
  DIR* dir = ::opendir(forest->options_.dir.c_str());
  if (dir == nullptr) {
    return Status::IOError("opendir " + forest->options_.dir + ": " +
                           std::strerror(errno));
  }
  std::vector<std::string> orphans;
  const std::string& name = forest->options_.name;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string file = entry->d_name;
    if (!file.starts_with(name)) continue;
    const std::string path = forest->options_.dir + "/" + file;
    const bool tree_file =
        file.starts_with(name + "_t") && file.ends_with(".ctr");
    // A checksum sidecar is live exactly when its data file is: one
    // surviving alone is debris from the same interrupted refresh.
    const bool sidecar_file =
        file.starts_with(name + "_t") && file.ends_with(".ctr.crc");
    const bool sidecar_orphan =
        sidecar_file &&
        live.find(path.substr(0, path.size() - 4)) == live.end();
    const bool stale_tmp = file == name + ".manifest.tmp";
    const bool stale_journal = file == name + ".refresh.wal";
    if ((tree_file && live.find(path) == live.end()) || sidecar_orphan ||
        stale_tmp || stale_journal) {
      orphans.push_back(path);
    }
  }
  ::closedir(dir);
  std::sort(orphans.begin(), orphans.end());  // deterministic GC order
  for (const std::string& path : orphans) {
    forest->RemoveOrphan(path, report);
  }
  forest->PublishState();
  return forest;
}

std::vector<const ViewDef*> CubetreeForest::TreeViewsAscArity(
    size_t tree_index) const {
  std::vector<const ViewDef*> result;
  for (uint32_t vid : plan_.trees[tree_index].view_ids) {
    result.push_back(&views_by_id_.at(vid));
  }
  std::sort(result.begin(), result.end(),
            [](const ViewDef* a, const ViewDef* b) {
              return a->arity() < b->arity();
            });
  return result;
}

std::function<uint8_t(uint32_t)> CubetreeForest::ArityFn() const {
  // Capture a by-value arity map so the callback stays valid.
  std::map<uint32_t, uint8_t> arities;
  for (const auto& [id, view] : views_by_id_) arities[id] = view.arity();
  return [arities](uint32_t view_id) {
    auto it = arities.find(view_id);
    return it == arities.end() ? static_cast<uint8_t>(0) : it->second;
  };
}

Status CubetreeForest::Build(const std::vector<ViewDef>& views,
                             ViewDataProvider* provider) {
  MutexLock refresh_lock(refresh_mu_);
  if (!trees_.empty()) {
    return Status::InvalidArgument("forest: already built");
  }
  views_ = views;
  for (const ViewDef& v : views_) {
    if (!views_by_id_.emplace(v.id, v).second) {
      return Status::InvalidArgument("forest: duplicate view id");
    }
  }
  if (options_.one_tree_per_view) {
    for (const ViewDef& v : views_) {
      ForestPlan::TreeSpec spec;
      spec.dims = std::max<uint8_t>(1, v.arity());
      spec.view_ids = {v.id};
      plan_.view_to_tree[v.id] = plan_.trees.size();
      plan_.trees.push_back(std::move(spec));
    }
  } else {
    plan_ = SelectMapping(views_);
  }
  if (CT_DCHECK_IS_ON()) {
    // Whichever planner ran, the SelectMapping invariant must hold: every
    // view placed exactly once, at most one view per arity per tree.
    std::set<uint32_t> placed;
    for (const ForestPlan::TreeSpec& spec : plan_.trees) {
      std::set<uint8_t> arities;
      for (uint32_t vid : spec.view_ids) {
        CT_DCHECK(placed.insert(vid).second)
            << "view " << vid << " placed in two trees";
        CT_DCHECK(arities.insert(views_by_id_.at(vid).arity()).second)
            << "two views of one arity share a tree";
      }
    }
    CT_DCHECK(placed.size() == views_.size()) << "plan left a view unplaced";
  }
  generations_.assign(plan_.trees.size(), 0);
  delta_generations_.assign(plan_.trees.size(), {});
  next_delta_generation_.assign(plan_.trees.size(), 0);
  quarantined_.assign(plan_.trees.size(), false);
  quarantine_files_.assign(plan_.trees.size(), {});

  for (size_t t = 0; t < plan_.trees.size(); ++t) {
    std::vector<MultiViewPointSource::ViewStream> streams;
    for (const ViewDef* view : TreeViewsAscArity(t)) {
      CT_ASSIGN_OR_RETURN(auto stream, provider->OpenViewStream(*view));
      streams.push_back({*view, std::move(stream)});
    }
    MultiViewPointSource source(std::move(streams));
    RTreeOptions tree_options = options_.rtree;
    tree_options.dims = plan_.trees[t].dims;
    CT_ASSIGN_OR_RETURN(
        auto rtree,
        PackedRTree::Build(TreePath(t, 0), tree_options, pool_, &source,
                           ArityFn(), io_stats_));
    std::vector<ViewDef> tree_views;
    for (uint32_t vid : plan_.trees[t].view_ids) {
      tree_views.push_back(views_by_id_.at(vid));
    }
    trees_.push_back(
        std::make_shared<Cubetree>(std::move(tree_views), std::move(rtree)));
  }
  CT_RETURN_NOT_OK(SaveManifest());
  PublishState();
  return Status::OK();
}

Result<std::unique_ptr<PointSource>> CubetreeForest::MakeDeltaSource(
    size_t tree_index, ViewDataProvider* provider) {
  std::vector<MultiViewPointSource::ViewStream> streams;
  for (const ViewDef* view : TreeViewsAscArity(tree_index)) {
    CT_ASSIGN_OR_RETURN(auto stream, provider->OpenViewStream(*view));
    streams.push_back({*view, std::move(stream)});
  }
  return std::unique_ptr<PointSource>(
      new MultiViewPointSource(std::move(streams)));
}

namespace {

/// Owns a chain of pairwise merges over N pack-ordered sources.
class ChainedMergeSource {
 public:
  ChainedMergeSource(std::vector<PointSource*> inputs, uint8_t dims) {
    head_ = inputs.empty() ? nullptr : inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i) {
      merges_.push_back(
          std::make_unique<MergePointSource>(head_, inputs[i], dims));
      head_ = merges_.back().get();
    }
  }

  PointSource* head() { return head_; }

 private:
  std::vector<std::unique_ptr<MergePointSource>> merges_;
  PointSource* head_ = nullptr;
};

}  // namespace

Status CubetreeForest::BuildNextGenerations(
    ViewDataProvider* delta_provider, std::vector<uint32_t>* generations,
    std::vector<std::unique_ptr<PackedRTree>>* new_trees) {
  const size_t num_trees = trees_.size();
  generations->assign(num_trees, 0);
  new_trees->clear();
  new_trees->resize(num_trees);

  // Prepare the work list serially under refresh_mu_: providers are not
  // thread-safe (see ViewDataProvider), and the worker lambda must not
  // touch guarded members — it gets plain-value tasks instead, each owning
  // its tree handle and pre-opened delta source, and writes into its own
  // pre-sized output slot.
  struct TreeTask {
    std::shared_ptr<Cubetree> tree;
    std::unique_ptr<PointSource> delta;
    std::string path;
    uint32_t new_generation = 0;
    uint8_t dims = 0;
  };
  std::vector<TreeTask> tasks(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    TreeTask& task = tasks[t];
    task.tree = trees_[t];
    CT_ASSIGN_OR_RETURN(task.delta, MakeDeltaSource(t, delta_provider));
    task.new_generation = generations_[t] + 1;
    task.path = TreePath(t, task.new_generation);
    task.dims = plan_.trees[t].dims;
  }

  const auto arity_fn = ArityFn();
  const RTreeOptions base_rtree = options_.rtree;
  BufferPool* const pool = pool_;
  const std::shared_ptr<IoStats> io_stats = io_stats_;
  // Each worker builds its merge_pack spans in a private child trace and
  // splices them back under the refresh trace when its task ends.
  obs::TraceHandoff handoff;
  return ParallelFor(
      num_trees, ResolvedRefreshThreads(num_trees),
      [&](size_t t, CancelFlag* cancel) -> Status {
        obs::TraceHandoff::Adopt adopt(handoff);
        TreeTask& task = tasks[t];
        obs::Span merge_span("refresh.merge_pack");
        merge_span.Annotate("tree", static_cast<uint64_t>(t));

        // Fold any pending delta trees into the same merge-pack.
        ScannerPointSource main_source(task.tree->rtree());
        std::vector<std::unique_ptr<ScannerPointSource>> delta_scans;
        std::vector<PointSource*> inputs = {&main_source};
        for (size_t d = 0; d < task.tree->num_deltas(); ++d) {
          delta_scans.push_back(
              std::make_unique<ScannerPointSource>(task.tree->delta(d)));
          inputs.push_back(delta_scans.back().get());
        }
        inputs.push_back(task.delta.get());
        ChainedMergeSource chain(inputs, task.dims);
        CancellablePointSource source(chain.head(), cancel);

        RTreeOptions tree_options = base_rtree;
        tree_options.dims = task.dims;
        CT_ASSIGN_OR_RETURN(
            (*new_trees)[t],
            PackedRTree::Build(task.path, tree_options, pool, &source,
                               arity_fn, io_stats));
        (*generations)[t] = task.new_generation;
        merge_span.Annotate("points", (*new_trees)[t]->num_points());
        CT_FAULT("forest.refresh.build");
        return Status::OK();
      });
}

Status CubetreeForest::ApplyDelta(ViewDataProvider* delta_provider) {
  MutexLock refresh_lock(refresh_mu_);
  if (trees_.empty()) {
    return Status::InvalidArgument("forest: not built yet");
  }
  if (HasQuarantineLocked()) {
    return Status::Unavailable(
        "forest: quarantined trees must be rebuilt before a refresh");
  }

  // Space preflight: the refresh transiently needs the old and the new
  // generation (plus sort runs and sidecars) on disk at once. Refuse up
  // front with a typed, retriable StorageFull naming the shortfall rather
  // than hit ENOSPC halfway through the merge-pack — the published epoch
  // keeps serving either way.
  CT_RETURN_NOT_OK(PreflightRefreshLocked(EstimateRefreshBytes(
      TotalSizeBytesLocked(), delta_provider->EstimatedInputBytes(),
      ResolvedRefreshThreads(trees_.size()))));

  // Advisory journal: records that a refresh started (and whether it
  // committed), so recovery can report an interrupted refresh. Correctness
  // does not depend on it — the atomic manifest swap and the recovery
  // sweep carry that.
  CT_ASSIGN_OR_RETURN(auto journal,
                      WriteAheadLog::Create(JournalPath(), io_stats_));
  static constexpr char kBeginRecord[] = "begin";
  static constexpr char kCommitRecord[] = "commit";
  CT_FAULT("forest.journal.append");
  CT_RETURN_NOT_OK(journal->LogRecord(kBeginRecord, sizeof(kBeginRecord) - 1));
  CT_RETURN_NOT_OK(journal->Force());
  CT_FAULT("forest.refresh.begin");

  // Phase 1: merge-pack every tree's next generation beside the current
  // files. The live trees keep serving queries; nothing is mutated yet.
  std::vector<uint32_t> new_generations;
  std::vector<std::unique_ptr<PackedRTree>> new_trees;
  Status phase =
      BuildNextGenerations(delta_provider, &new_generations, &new_trees);

  // Phase 2: the durable manifest swap — the commit point.
  if (phase.ok()) {
    obs::Span commit_span("refresh.manifest_commit");
    phase = SaveManifestDurable(
        new_generations, std::vector<std::vector<uint32_t>>(trees_.size()));
  }
  if (!phase.ok()) {
    // Clean abort: delete whatever phase 1 managed to build (including a
    // partial file from a failed build) and leave the live state alone.
    for (size_t t = 0; t < trees_.size(); ++t) {
      const std::string path = TreePath(t, generations_[t] + 1);
      if (t < new_trees.size()) new_trees[t].reset();
      RemoveTreeFileBestEffort(path, "refresh abort");
    }
    journal.reset();
    Status removed = RemoveFileIfExists(JournalPath());
    if (!removed.ok()) {
      CT_LOG(Warn) << "forest: refresh abort: " << removed.ToString();
    }
    return phase;
  }

  // Phase 3: the manifest now names the new generation — install fresh
  // Cubetree objects and publish a new epoch. The previous epoch's objects
  // are never mutated: readers pinned to it keep serving main + deltas of
  // the old generation until their snapshots drop, at which point the
  // retired files are reclaimed (PublishState arms the tokens).
  for (size_t t = 0; t < trees_.size(); ++t) {
    std::vector<ViewDef> tree_views;
    for (uint32_t vid : plan_.trees[t].view_ids) {
      tree_views.push_back(views_by_id_.at(vid));
    }
    trees_[t] = std::make_shared<Cubetree>(std::move(tree_views),
                                           std::move(new_trees[t]));
    delta_generations_[t].clear();
  }
  generations_ = std::move(new_generations);
  CT_FAULT("forest.refresh.commit");
  // Publishing retires the replaced generation's files; a crash between the
  // manifest swap above and this point leaks them for recovery to sweep.
  PublishState();

  // Mark the journal committed and retire it. Every failure past the commit
  // point only leaks files for recovery to sweep.
  Status logged = journal->LogRecord(kCommitRecord, sizeof(kCommitRecord) - 1);
  if (logged.ok()) logged = journal->Force();
  if (!logged.ok()) {
    CT_LOG(Warn) << "forest: refresh journal: " << logged.ToString();
  }
  journal.reset();
  Status removed = RemoveFileIfExists(JournalPath());
  if (!removed.ok()) {
    CT_LOG(Warn) << "forest: refresh journal removal: " << removed.ToString();
  }
  return Status::OK();
}

Status CubetreeForest::ApplyDeltaPartial(ViewDataProvider* delta_provider) {
  MutexLock refresh_lock(refresh_mu_);
  if (trees_.empty()) {
    return Status::InvalidArgument("forest: not built yet");
  }
  if (HasQuarantineLocked()) {
    return Status::Unavailable(
        "forest: quarantined trees must be rebuilt before a refresh");
  }
  // A partial refresh only writes the increment (no repack of the mains),
  // so the preflight covers the delta trees, their sort runs and sidecars.
  CT_RETURN_NOT_OK(PreflightRefreshLocked(
      EstimateRefreshBytes(0, delta_provider->EstimatedInputBytes(),
                           ResolvedRefreshThreads(trees_.size()))));
  // Phase 1: pack each tree's increment into a delta tree file, one worker
  // per tree. The task list (streams, generation numbers) is prepared
  // serially under refresh_mu_; workers only touch their own task and
  // their own output slots.
  const size_t num_trees = trees_.size();
  std::vector<std::unique_ptr<PackedRTree>> built(num_trees);
  std::vector<int64_t> built_generations(num_trees, -1);
  struct DeltaTask {
    std::unique_ptr<PointSource> delta;
    std::string path;
    uint32_t generation = 0;
    uint8_t dims = 0;
  };
  std::vector<DeltaTask> tasks(num_trees);
  auto prepare_all = [&]() -> Status {
    for (size_t t = 0; t < num_trees; ++t) {
      DeltaTask& task = tasks[t];
      CT_ASSIGN_OR_RETURN(task.delta, MakeDeltaSource(t, delta_provider));
      task.generation = next_delta_generation_[t]++;
      task.path = DeltaPath(t, task.generation);
      task.dims = plan_.trees[t].dims;
    }
    return Status::OK();
  };
  Status phase = prepare_all();
  if (phase.ok()) {
    const auto arity_fn = ArityFn();
    const RTreeOptions base_rtree = options_.rtree;
    BufferPool* const pool = pool_;
    const std::shared_ptr<IoStats> io_stats = io_stats_;
    obs::TraceHandoff handoff;
    phase = ParallelFor(
        num_trees, ResolvedRefreshThreads(num_trees),
        [&](size_t t, CancelFlag* cancel) -> Status {
          obs::TraceHandoff::Adopt adopt(handoff);
          DeltaTask& task = tasks[t];
          obs::Span delta_span("refresh.delta_pack");
          delta_span.Annotate("tree", static_cast<uint64_t>(t));
          CancellablePointSource source(task.delta.get(), cancel);
          RTreeOptions tree_options = base_rtree;
          tree_options.dims = task.dims;
          CT_ASSIGN_OR_RETURN(
              auto delta_tree,
              PackedRTree::Build(task.path, tree_options, pool, &source,
                                 arity_fn, io_stats));
          if (delta_tree->num_points() == 0) {
            // Nothing in this tree's increment; drop the empty file.
            const std::string path = delta_tree->path();
            delta_tree.reset();
            CT_RETURN_NOT_OK(RemoveFileIfExists(path));
            CT_RETURN_NOT_OK(RemoveChecksumSidecar(path));
            return Status::OK();
          }
          built[t] = std::move(delta_tree);
          built_generations[t] = static_cast<int64_t>(task.generation);
          return Status::OK();
        });
  }

  // Phase 2: commit the new delta list durably.
  if (phase.ok()) {
    std::vector<std::vector<uint32_t>> next_deltas = delta_generations_;
    for (size_t t = 0; t < trees_.size(); ++t) {
      if (built_generations[t] >= 0) {
        next_deltas[t].push_back(static_cast<uint32_t>(built_generations[t]));
      }
    }
    obs::Span commit_span("refresh.manifest_commit");
    phase = SaveManifestDurable(generations_, next_deltas);
  }
  if (!phase.ok()) {
    // Clean abort: release and remove every output the workers produced —
    // completed delta packs and the partial file of a failed or cancelled
    // worker alike (an unprepared task has an empty path).
    for (size_t t = 0; t < num_trees; ++t) {
      built[t].reset();
      if (!tasks[t].path.empty()) {
        RemoveTreeFileBestEffort(tasks[t].path, "partial-refresh abort");
      }
    }
    return phase;
  }

  // Phase 3: attach in memory (infallible). A touched tree gets a fresh
  // Cubetree sharing the old main and delta trees plus the new delta, so
  // the previously published epoch stays exactly as it was.
  for (size_t t = 0; t < trees_.size(); ++t) {
    if (built_generations[t] < 0) continue;
    std::vector<ViewDef> tree_views;
    for (uint32_t vid : plan_.trees[t].view_ids) {
      tree_views.push_back(views_by_id_.at(vid));
    }
    auto next_tree = std::make_shared<Cubetree>(std::move(tree_views),
                                                trees_[t]->shared_rtree());
    for (const auto& old_delta : trees_[t]->shared_deltas()) {
      next_tree->AddDelta(old_delta);
    }
    next_tree->AddDelta(std::move(built[t]));
    trees_[t] = std::move(next_tree);
    delta_generations_[t].push_back(
        static_cast<uint32_t>(built_generations[t]));
  }
  PublishState();
  return Status::OK();
}

Status CubetreeForest::Compact() {
  struct EmptyProvider : ViewDataProvider {
    Result<std::unique_ptr<RecordStream>> OpenViewStream(
        const ViewDef& view) override {
      return std::unique_ptr<RecordStream>(new MemoryRecordStream(
          {}, ViewRecordBytes(view.arity())));
    }
  } empty;
  // ApplyDelta with an empty increment folds all pending deltas in (and
  // re-checks the built/quarantine preconditions under its own lock).
  return ApplyDelta(&empty);
}

Status CubetreeForest::RebuildQuarantined(ViewDataProvider* provider) {
  MutexLock refresh_lock(refresh_mu_);
  if (!HasQuarantineLocked()) return Status::OK();
  std::vector<size_t> targets;
  for (size_t t = 0; t < trees_.size(); ++t) {
    if (quarantined_[t]) targets.push_back(t);
  }
  // The rebuild writes fresh full generations of the quarantined trees
  // from base data; preflight that footprint like any other refresh.
  CT_RETURN_NOT_OK(PreflightRefreshLocked(
      EstimateRefreshBytes(0, provider->EstimatedInputBytes(),
                           ResolvedRefreshThreads(targets.size()))));
  // Phase 1: bulk-build a fresh generation of each quarantined tree from
  // the full view contents the provider supplies. Streams open serially
  // (providers are not thread-safe); the builds fan out one per tree.
  std::vector<std::unique_ptr<PackedRTree>> built(trees_.size());
  std::vector<uint32_t> new_generations = generations_;
  struct RebuildTask {
    size_t t = 0;
    std::unique_ptr<MultiViewPointSource> source;
    std::string path;
    uint32_t generation = 0;
    uint8_t dims = 0;
  };
  std::vector<RebuildTask> tasks(targets.size());
  auto prepare_all = [&]() -> Status {
    for (size_t i = 0; i < targets.size(); ++i) {
      const size_t t = targets[i];
      std::vector<MultiViewPointSource::ViewStream> streams;
      for (const ViewDef* view : TreeViewsAscArity(t)) {
        CT_ASSIGN_OR_RETURN(auto stream, provider->OpenViewStream(*view));
        streams.push_back({*view, std::move(stream)});
      }
      RebuildTask& task = tasks[i];
      task.t = t;
      task.source =
          std::make_unique<MultiViewPointSource>(std::move(streams));
      task.generation = generations_[t] + 1;
      task.path = TreePath(t, task.generation);
      task.dims = plan_.trees[t].dims;
    }
    return Status::OK();
  };
  Status phase = prepare_all();
  if (phase.ok()) {
    const auto arity_fn = ArityFn();
    const RTreeOptions base_rtree = options_.rtree;
    BufferPool* const pool = pool_;
    const std::shared_ptr<IoStats> io_stats = io_stats_;
    obs::TraceHandoff handoff;
    phase = ParallelFor(
        tasks.size(), ResolvedRefreshThreads(tasks.size()),
        [&](size_t i, CancelFlag* cancel) -> Status {
          obs::TraceHandoff::Adopt adopt(handoff);
          RebuildTask& task = tasks[i];
          obs::Span rebuild_span("refresh.rebuild_pack");
          rebuild_span.Annotate("tree", static_cast<uint64_t>(task.t));
          CancellablePointSource source(task.source.get(), cancel);
          RTreeOptions tree_options = base_rtree;
          tree_options.dims = task.dims;
          CT_ASSIGN_OR_RETURN(
              built[task.t],
              PackedRTree::Build(task.path, tree_options, pool, &source,
                                 arity_fn, io_stats));
          new_generations[task.t] = task.generation;
          return Status::OK();
        });
  }
  if (phase.ok()) {
    phase = SaveManifestDurable(new_generations, delta_generations_);
  }
  if (!phase.ok()) {
    for (size_t t : targets) {
      const std::string path = TreePath(t, generations_[t] + 1);
      built[t].reset();
      RemoveTreeFileBestEffort(path, "rebuild abort");
    }
    return phase;
  }
  for (size_t t : targets) {
    std::vector<ViewDef> tree_views;
    for (uint32_t vid : plan_.trees[t].view_ids) {
      tree_views.push_back(views_by_id_.at(vid));
    }
    trees_[t] =
        std::make_shared<Cubetree>(std::move(tree_views), std::move(built[t]));
    quarantined_[t] = false;
  }
  generations_ = std::move(new_generations);
  // Quarantined slots were nullptr in every published epoch, so the
  // ".quarantine" files are not epoch-tracked; remove them directly.
  for (size_t t : targets) {
    for (const std::string& path : quarantine_files_[t]) {
      Status removed = RemoveFileIfExists(path);
      if (!removed.ok()) {
        CT_LOG(Warn) << "forest: quarantine cleanup: " << removed.ToString();
      }
    }
    quarantine_files_[t].clear();
  }
  PublishState();
  return Status::OK();
}

Result<bool> CubetreeForest::QuarantineForCorruption(
    uint32_t view_id, const std::string& file_path, const Status& why) {
  MutexLock lock(refresh_mu_);
  auto it = plan_.view_to_tree.find(view_id);
  if (it == plan_.view_to_tree.end() || it->second >= trees_.size()) {
    return Status::NotFound("forest: unknown view id " +
                            std::to_string(view_id));
  }
  const size_t t = it->second;
  if (quarantined_[t]) return false;
  if (!file_path.empty()) {
    bool still_live = TreePath(t, generations_[t]) == file_path;
    for (uint32_t g : delta_generations_[t]) {
      still_live = still_live || DeltaPath(t, g) == file_path;
    }
    // The corrupt file already left the live generation (a refresh
    // replaced it since the caller read from it); its epoch dies with the
    // last snapshot pinning it, so there is nothing left to repair.
    if (!still_live) return false;
  }
  CT_LOG(Warn) << "forest: quarantining tree " << t << " for corruption: "
               << why.ToString();
  QuarantineTree(t, why, nullptr);
  // Publish immediately: in-flight queries keep their pinned snapshots,
  // but every re-route from here on skips the quarantined views.
  PublishState();
  static obs::Counter* const quarantines =
      obs::MetricsRegistry::Instance().GetCounter(
          "forest.corruption_quarantines");
  quarantines->Increment();
  return true;
}

bool CubetreeForest::IsViewQuarantined(uint32_t view_id) const {
  auto it = plan_.view_to_tree.find(view_id);
  if (it == plan_.view_to_tree.end()) return false;
  MutexLock lock(refresh_mu_);
  return it->second < quarantined_.size() && quarantined_[it->second];
}

size_t CubetreeForest::NumQuarantinedTreesLocked() const {
  size_t total = 0;
  for (bool q : quarantined_) total += q ? 1 : 0;
  return total;
}

size_t CubetreeForest::NumQuarantinedTrees() const {
  MutexLock lock(refresh_mu_);
  return NumQuarantinedTreesLocked();
}

Result<std::map<uint32_t, uint64_t>> CubetreeForest::CountPointsPerView() {
  MutexLock lock(refresh_mu_);
  std::map<uint32_t, uint64_t> counts;
  for (const ViewDef& v : views_) counts[v.id] = 0;
  for (size_t t = 0; t < trees_.size(); ++t) {
    if (trees_[t] == nullptr) continue;
    auto scan_tree = [&counts](PackedRTree* rtree) -> Status {
      ScannerPointSource source(rtree);
      const PointRecord* record = nullptr;
      while (true) {
        CT_RETURN_NOT_OK(source.Next(&record));
        if (record == nullptr) break;
        ++counts[record->view_id];
      }
      return Status::OK();
    };
    CT_RETURN_NOT_OK(scan_tree(trees_[t]->rtree()));
    for (size_t d = 0; d < trees_[t]->num_deltas(); ++d) {
      CT_RETURN_NOT_OK(scan_tree(trees_[t]->delta(d)));
    }
  }
  return counts;
}

size_t CubetreeForest::TotalDeltas() const {
  MutexLock lock(refresh_mu_);
  size_t total = 0;
  for (const auto& tree : trees_) {
    if (tree) total += tree->num_deltas();
  }
  return total;
}

Result<std::shared_ptr<Cubetree>> CubetreeForest::TreeForView(
    uint32_t view_id) {
  auto it = plan_.view_to_tree.find(view_id);
  if (it == plan_.view_to_tree.end()) {
    return Status::NotFound("forest: view not materialized");
  }
  MutexLock lock(refresh_mu_);
  if (it->second < quarantined_.size() && quarantined_[it->second]) {
    return Status::Unavailable("forest: view " + std::to_string(view_id) +
                               " is quarantined awaiting rebuild");
  }
  return trees_[it->second];
}

Result<const ViewDef*> CubetreeForest::view(uint32_t view_id) const {
  auto it = views_by_id_.find(view_id);
  if (it == views_by_id_.end()) {
    return Status::NotFound("forest: unknown view id");
  }
  return &it->second;
}

uint64_t CubetreeForest::TotalSizeBytes() const {
  MutexLock lock(refresh_mu_);
  return TotalSizeBytesLocked();
}

uint64_t CubetreeForest::TotalSizeBytesLocked() const {
  uint64_t total = 0;
  for (const auto& tree : trees_) {
    if (tree) total += tree->TotalSizeBytes();
  }
  return total;
}

uint64_t CubetreeForest::ReclaimSpace() {
  MutexLock lock(refresh_mu_);
  return ReclaimSpaceLocked();
}

uint64_t CubetreeForest::ReclaimSpaceLocked() {
  // Same classification as Recover's step-4 sweep, with one extra guard:
  // a file with a live TrackedFile token is referenced by some epoch —
  // possibly a retired one a reader still pins — and must survive. The GC
  // counters are left alone; they describe the deferred-unlink backlog,
  // not this sweep.
  std::set<std::string> keep;
  for (size_t t = 0; t < trees_.size(); ++t) {
    if (trees_[t] == nullptr) continue;
    keep.insert(TreePath(t, generations_[t]));
    for (uint32_t g : delta_generations_[t]) {
      keep.insert(DeltaPath(t, g));
    }
  }
  {
    MutexLock gc_lock(gc_->mu);
    keep.insert(gc_->tracked_paths.begin(), gc_->tracked_paths.end());
  }
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return 0;
  std::vector<std::string> sweep;
  const std::string& name = options_.name;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string file = entry->d_name;
    if (!file.starts_with(name)) continue;
    const std::string path = options_.dir + "/" + file;
    const bool tree_file =
        file.starts_with(name + "_t") && file.ends_with(".ctr");
    const bool sidecar_file =
        file.starts_with(name + "_t") && file.ends_with(".ctr.crc");
    const bool sidecar_orphan =
        sidecar_file &&
        keep.find(path.substr(0, path.size() - 4)) == keep.end();
    const bool stale_tmp = file == name + ".manifest.tmp";
    if ((tree_file && keep.find(path) == keep.end()) || sidecar_orphan ||
        stale_tmp) {
      sweep.push_back(path);
    }
  }
  ::closedir(dir);
  std::sort(sweep.begin(), sweep.end());  // deterministic sweep order
  uint64_t reclaimed = 0;
  for (const std::string& path : sweep) {
    struct stat st;
    const uint64_t bytes =
        ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
    Status removed = RemoveFileIfExists(path);
    if (!removed.ok()) {
      CT_LOG(Warn) << "forest: space reclaim: " << removed.ToString();
      continue;
    }
    CT_LOG(Info) << "forest: space reclaim: removed " << path << " (" << bytes
                 << " bytes)";
    reclaimed += bytes;
  }
  return reclaimed;
}

unsigned CubetreeForest::ResolvedRefreshThreads(size_t num_tasks) const {
  const unsigned configured = options_.refresh_threads != 0
                                  ? options_.refresh_threads
                                  : RefreshThreadsFromEnv();
  if (num_tasks == 0) return 1;
  return static_cast<unsigned>(
      std::min<size_t>(std::max(configured, 1u), num_tasks));
}

unsigned CubetreeForest::RefreshConcurrency() const {
  MutexLock lock(refresh_mu_);
  return ResolvedRefreshThreads(trees_.size());
}

Status CubetreeForest::PreflightRefreshLocked(uint64_t estimated_bytes) {
  DiskSpaceManager disk(
      DiskSpaceManager::Options{options_.dir, options_.disk_reserve_bytes});
  Status space = disk.Preflight(estimated_bytes);
  if (space.IsStorageFull()) {
    // Make room before refusing: sweep crash debris and files whose
    // deferred unlink was vetoed or failed, then probe again.
    const uint64_t reclaimed = ReclaimSpaceLocked();
    if (reclaimed > 0) {
      CT_LOG(Info) << "forest: refresh preflight reclaimed " << reclaimed
                   << " bytes, re-probing";
      space = disk.Preflight(estimated_bytes);
    }
  }
  return space;
}

uint64_t CubetreeForest::TotalPoints() const {
  MutexLock lock(refresh_mu_);
  uint64_t total = 0;
  for (const auto& tree : trees_) {
    if (tree) total += tree->TotalPoints();
  }
  return total;
}

void CubetreeForest::PublishState() {
  using forest_internal::EpochState;
  using forest_internal::TrackedFile;
  obs::Span publish_span("refresh.publish");
  Timer publish_timer;
  std::shared_ptr<EpochState> old = published_.load(std::memory_order_acquire);
  auto next = std::make_shared<EpochState>();
  next->epoch = next_epoch_++;
  next->gc = gc_;
  next->view_to_tree = plan_.view_to_tree;
  next->quarantined = quarantined_;
  next->trees = trees_;
  // File-reclamation tokens: carry over the token of every file still live
  // (so one file has one token across all epochs that reference it), mint
  // tokens for new files.
  std::map<std::string, std::shared_ptr<TrackedFile>> old_tokens;
  if (old != nullptr) {
    for (const auto& file : old->files) old_tokens[file->path()] = file;
  }
  std::set<std::string> live_paths;
  for (const auto& tree : trees_) {
    if (tree == nullptr) continue;
    live_paths.insert(tree->rtree()->path());
    for (const auto& delta : tree->shared_deltas()) {
      live_paths.insert(delta->path());
    }
  }
  for (const std::string& path : live_paths) {
    auto it = old_tokens.find(path);
    next->files.push_back(it != old_tokens.end()
                              ? it->second
                              : std::make_shared<TrackedFile>(path, gc_));
  }
  {
    MutexLock lock(gc_->mu);
    gc_->live_epoch = next->epoch;
    if (old != nullptr) gc_->pinned_retired_epochs.insert(old->epoch);
  }
  if (old != nullptr) old->retired.store(true, std::memory_order_relaxed);
  const uint64_t published_epoch = next->epoch;
  published_.store(std::move(next), std::memory_order_release);
  // Retire files the new generation dropped — after the swap, so a
  // throw/crash injected at the GC failpoint leaves the commit published
  // (files then leak to recovery, exactly as a crash between commit and GC
  // always has).
  if (old != nullptr) {
    for (const auto& file : old->files) {
      if (live_paths.find(file->path()) == live_paths.end()) file->Retire();
    }
  }
  auto& reg = obs::MetricsRegistry::Instance();
  static obs::Histogram* const publish_latency =
      reg.GetHistogram("forest.publish_latency_us");
  static obs::Gauge* const live_epoch = reg.GetGauge("forest.live_epoch");
  publish_latency->Record(publish_timer.ElapsedMicros());
  live_epoch->Set(static_cast<int64_t>(published_epoch));
}

ForestSnapshot CubetreeForest::AcquireSnapshot() const {
  return ForestSnapshot(published_.load(std::memory_order_acquire));
}

ForestGcStats CubetreeForest::GcStats() const {
  MutexLock lock(gc_->mu);
  ForestGcStats stats;
  stats.live_epoch = gc_->live_epoch;
  stats.pinned_epochs = gc_->pinned_retired_epochs.size();
  stats.unreclaimed_files = gc_->unreclaimed_files;
  stats.reclaimed_files = gc_->reclaimed_files;
  return stats;
}

std::vector<std::string> CubetreeForest::LiveFiles() const {
  std::vector<std::string> paths;
  auto state = published_.load(std::memory_order_acquire);
  if (state == nullptr) return paths;
  paths.reserve(state->files.size());
  for (const auto& file : state->files) paths.push_back(file->path());
  return paths;
}

Status CubetreeForest::Destroy() {
  MutexLock refresh_lock(refresh_mu_);
  // Drop the published epoch first (snapshots must already be released per
  // the API contract); its tokens are unretired, so this deletes nothing —
  // the explicit removal below does.
  published_.store(nullptr, std::memory_order_release);
  for (auto& tree : trees_) {
    if (!tree) continue;
    std::vector<std::string> paths = {tree->rtree()->path()};
    for (size_t d = 0; d < tree->num_deltas(); ++d) {
      paths.push_back(tree->delta(d)->path());
    }
    tree.reset();
    for (const std::string& path : paths) {
      CT_RETURN_NOT_OK(RemoveFileIfExists(path));
      CT_RETURN_NOT_OK(RemoveChecksumSidecar(path));
    }
  }
  trees_.clear();
  for (const auto& files : quarantine_files_) {
    for (const std::string& path : files) {
      CT_RETURN_NOT_OK(RemoveFileIfExists(path));
    }
  }
  quarantine_files_.clear();
  quarantined_.clear();
  CT_RETURN_NOT_OK(RemoveFileIfExists(ManifestPath() + ".tmp"));
  CT_RETURN_NOT_OK(RemoveFileIfExists(JournalPath()));
  return RemoveFileIfExists(ManifestPath());
}

}  // namespace cubetree
