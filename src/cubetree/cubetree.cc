#include "cubetree/cubetree.h"

#include "common/assert.h"

namespace cubetree {

Result<const ViewDef*> Cubetree::FindView(uint32_t view_id) const {
  for (const ViewDef& v : views_) {
    if (v.id == view_id) return &v;
  }
  return Status::NotFound("view " + std::to_string(view_id) +
                          " not stored in this Cubetree");
}

uint8_t Cubetree::ViewArity(uint32_t view_id) const {
  for (const ViewDef& v : views_) {
    if (v.id == view_id) return v.arity();
  }
  return 0;
}

Result<Rect> Cubetree::SliceRect(
    uint32_t view_id,
    const std::vector<std::optional<Coord>>& bindings) const {
  std::vector<std::pair<Coord, Coord>> intervals;
  intervals.reserve(bindings.size());
  for (const auto& binding : bindings) {
    if (binding.has_value()) {
      intervals.emplace_back(*binding, *binding);
    } else {
      intervals.emplace_back(1, kCoordMax);
    }
  }
  return BoxRect(view_id, intervals);
}

Result<Rect> Cubetree::BoxRect(
    uint32_t view_id,
    const std::vector<std::pair<Coord, Coord>>& intervals) const {
  CT_ASSIGN_OR_RETURN(const ViewDef* view, FindView(view_id));
  if (intervals.size() != view->arity()) {
    return Status::InvalidArgument("box intervals do not match view arity");
  }
  Rect rect;
  const size_t dims = tree_->dims();
  for (size_t i = 0; i < dims; ++i) {
    if (i < view->arity()) {
      // Real keys are >= 1; excluding 0 keeps points of lower-arity views
      // out of the box even for fully open dimensions.
      rect.lo[i] = std::max<Coord>(1, intervals[i].first);
      rect.hi[i] = intervals[i].second;
    } else {
      // Beyond the view's arity every coordinate is the implicit 0.
      rect.lo[i] = 0;
      rect.hi[i] = 0;
    }
  }
  return rect;
}

Status Cubetree::QuerySlice(
    uint32_t view_id, const std::vector<std::optional<Coord>>& bindings,
    const std::function<void(const Coord*, const AggValue&)>& emit,
    SearchStats* stats) {
  std::vector<std::pair<Coord, Coord>> intervals;
  intervals.reserve(bindings.size());
  for (const auto& binding : bindings) {
    if (binding.has_value()) {
      intervals.emplace_back(*binding, *binding);
    } else {
      intervals.emplace_back(1, kCoordMax);
    }
  }
  return QueryBox(view_id, intervals, emit, stats);
}

Status Cubetree::QueryBox(
    uint32_t view_id, const std::vector<std::pair<Coord, Coord>>& intervals,
    const std::function<void(const Coord*, const AggValue&)>& emit,
    SearchStats* stats) {
  CT_ASSIGN_OR_RETURN(Rect rect, BoxRect(view_id, intervals));
  auto filter = [&](const PointRecord& rec) {
    CT_DCHECK(rect.ContainsPoint(rec.coords, tree_->dims()))
        << "search emitted a point outside the query box";
    if (rec.view_id == view_id) emit(rec.coords, rec.agg);
  };
  CT_RETURN_NOT_OK(tree_->Search(rect, filter, stats));
  for (const auto& delta : deltas_) {
    CT_RETURN_NOT_OK(delta->Search(rect, filter, stats));
  }
  return Status::OK();
}

}  // namespace cubetree
