#include "cubetree/view_def.h"

namespace cubetree {

int CubeSchema::AttrIndex(const std::string& name) const {
  for (size_t i = 0; i < attr_names.size(); ++i) {
    if (attr_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string ViewDef::Name(const CubeSchema& schema) const {
  if (attrs.empty()) return "V{none}";
  std::string out = "V{";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.attr_names[attrs[i]];
  }
  out += "}";
  return out;
}

}  // namespace cubetree
