#include "cubetree/select_mapping.h"

#include <deque>

namespace cubetree {

ForestPlan SelectMapping(const std::vector<ViewDef>& views) {
  ForestPlan plan;
  if (views.empty()) return plan;

  uint8_t max_arity = 0;
  for (const ViewDef& v : views) max_arity = std::max(max_arity, v.arity());

  // Group views by arity, preserving input order within each class.
  std::vector<std::deque<uint32_t>> sets(static_cast<size_t>(max_arity) + 1);
  for (const ViewDef& v : views) sets[v.arity()].push_back(v.id);

  auto any_left = [&]() {
    for (const auto& s : sets) {
      if (!s.empty()) return true;
    }
    return false;
  };

  while (any_left()) {
    // The new tree's dimensionality is the max arity still unmapped.
    int arity = static_cast<int>(max_arity);
    while (arity >= 0 && sets[arity].empty()) --arity;
    ForestPlan::TreeSpec tree;
    tree.dims = static_cast<uint8_t>(std::max(arity, 1));
    // Take one view of each arity, highest first (including arity 0).
    for (int j = arity; j >= 0; --j) {
      if (!sets[j].empty()) {
        const uint32_t vid = sets[j].front();
        sets[j].pop_front();
        plan.view_to_tree[vid] = plan.trees.size();
        tree.view_ids.push_back(vid);
      }
    }
    plan.trees.push_back(std::move(tree));
  }
  return plan;
}

}  // namespace cubetree
