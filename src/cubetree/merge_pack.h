#ifndef CUBETREE_CUBETREE_MERGE_PACK_H_
#define CUBETREE_CUBETREE_MERGE_PACK_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "rtree/packed_rtree.h"

namespace cubetree {

/// Merges two pack-ordered point sources into one, combining the aggregate
/// payloads of points with identical coordinates (which, by the Cubetree
/// organization, always belong to the same view). This is the heart of the
/// paper's bulk-incremental update: old tree ∪ sorted delta, in linear time.
class MergePointSource : public PointSource {
 public:
  /// Either source may immediately report end-of-stream. `dims` is the
  /// dimensionality of the enclosing tree.
  MergePointSource(PointSource* a, PointSource* b, uint8_t dims)
      : a_(a), b_(b), dims_(dims) {}

  Status Next(const PointRecord** record) override;

 private:
  PointSource* a_;
  PointSource* b_;
  uint8_t dims_;
  const PointRecord* cur_a_ = nullptr;
  const PointRecord* cur_b_ = nullptr;
  bool primed_ = false;
  PointRecord merged_;
  // Debug-only: previous emitted coordinates, to CT_DCHECK that the merge
  // of two pack-ordered inputs stays pack-ordered.
  Coord prev_coords_[kMaxDims];
  bool have_prev_ = false;
};

/// Merge-packs `old_tree` (may be null for an initial build) with `delta`
/// (points sorted in pack order) into a brand-new packed tree at
/// `out_path`. The old tree is scanned sequentially, the output is written
/// sequentially; no random I/O except the two metadata pages.
Result<std::unique_ptr<PackedRTree>> MergePack(
    PackedRTree* old_tree, PointSource* delta, const std::string& out_path,
    const RTreeOptions& options, BufferPool* pool,
    std::function<uint8_t(uint32_t)> view_arity,
    std::shared_ptr<IoStats> io_stats = nullptr);

}  // namespace cubetree

#endif  // CUBETREE_CUBETREE_MERGE_PACK_H_
