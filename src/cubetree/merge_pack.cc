#include "cubetree/merge_pack.h"

#include <cstring>

#include "common/assert.h"
#include "cubetree/cubetree.h"
#include "rtree/geometry.h"

namespace cubetree {

Status MergePointSource::Next(const PointRecord** record) {
  if (!primed_) {
    CT_RETURN_NOT_OK(a_->Next(&cur_a_));
    CT_RETURN_NOT_OK(b_->Next(&cur_b_));
    primed_ = true;
  }
  if (cur_a_ == nullptr && cur_b_ == nullptr) {
    *record = nullptr;
    return Status::OK();
  }
  int cmp;
  if (cur_a_ == nullptr) {
    cmp = 1;
  } else if (cur_b_ == nullptr) {
    cmp = -1;
  } else {
    cmp = PackOrderCompare(cur_a_->coords, cur_b_->coords, dims_);
  }
  if (cmp < 0) {
    merged_ = *cur_a_;
    CT_RETURN_NOT_OK(a_->Next(&cur_a_));
  } else if (cmp > 0) {
    merged_ = *cur_b_;
    CT_RETURN_NOT_OK(b_->Next(&cur_b_));
  } else {
    if (cur_a_->view_id != cur_b_->view_id) {
      return Status::Corruption(
          "merge-pack: identical coordinates from different views");
    }
    merged_ = *cur_a_;
    merged_.agg.Merge(cur_b_->agg);
    CT_RETURN_NOT_OK(a_->Next(&cur_a_));
    CT_RETURN_NOT_OK(b_->Next(&cur_b_));
  }
  if (CT_DCHECK_IS_ON()) {
    CT_DCHECK(!have_prev_ ||
              PackOrderCompare(prev_coords_, merged_.coords, dims_) < 0)
        << "merge-pack output left pack order";
    std::memcpy(prev_coords_, merged_.coords, sizeof(prev_coords_));
    have_prev_ = true;
  }
  *record = &merged_;
  return Status::OK();
}

Result<std::unique_ptr<PackedRTree>> MergePack(
    PackedRTree* old_tree, PointSource* delta, const std::string& out_path,
    const RTreeOptions& options, BufferPool* pool,
    std::function<uint8_t(uint32_t)> view_arity,
    std::shared_ptr<IoStats> io_stats) {
  if (old_tree == nullptr) {
    return PackedRTree::Build(out_path, options, pool, delta,
                              std::move(view_arity), std::move(io_stats));
  }
  ScannerPointSource old_source(old_tree);
  MergePointSource merged(&old_source, delta, options.dims);
  return PackedRTree::Build(out_path, options, pool, &merged,
                            std::move(view_arity), std::move(io_stats));
}

}  // namespace cubetree
