#include "rtree/geometry.h"

namespace cubetree {

std::string Rect::ToString(size_t dims) const {
  std::string out = "[";
  for (size_t i = 0; i < dims; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(lo[i]);
  }
  out += " .. ";
  for (size_t i = 0; i < dims; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(hi[i]);
  }
  out += "]";
  return out;
}

}  // namespace cubetree
