#include "rtree/packed_rtree.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/assert.h"

#include "common/coding.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtree/node.h"
#include "storage/checksum.h"

namespace cubetree {

namespace {

constexpr uint32_t kRTreeMagic = 0x43545254;  // "CTRT"

// Meta page (page 0) layout:
//   [0..3]   magic
//   [4]      dims
//   [5]      compress flag
//   [6..7]   pad
//   [8..11]  root page
//   [12..15] height
//   [16..23] num_points
//   [24..27] num_leaf_pages

void WriteMetaPage(Page* page, const RTreeOptions& options, PageId root,
                   uint32_t height, uint64_t num_points,
                   PageId num_leaf_pages) {
  page->Zero();
  char* p = page->data;
  EncodeFixed32(p, kRTreeMagic);
  p[4] = static_cast<char>(options.dims);
  p[5] = options.compress_leaves ? 1 : 0;
  EncodeFixed32(p + 8, root);
  EncodeFixed32(p + 12, height);
  EncodeFixed64(p + 16, num_points);
  EncodeFixed32(p + 24, num_leaf_pages);
}

}  // namespace

PackedRTree::PackedRTree(std::unique_ptr<PageManager> file,
                         RTreeOptions options, BufferPool* pool)
    : file_(std::move(file)), options_(options), pool_(pool) {}

PackedRTree::~PackedRTree() {
  if (pool_ != nullptr) (void)pool_->DropFile(file_.get(), /*write_back=*/false);
}

Result<std::unique_ptr<PackedRTree>> PackedRTree::Build(
    const std::string& path, const RTreeOptions& options, BufferPool* pool,
    PointSource* source, std::function<uint8_t(uint32_t)> view_arity,
    std::shared_ptr<IoStats> io_stats) {
  if (options.dims == 0 || options.dims > kMaxDims) {
    return Status::InvalidArgument("rtree: dims out of range");
  }
  CT_FAULT("rtree.build.start");
  CT_RETURN_NOT_OK(RemoveFileIfExists(path));
  CT_RETURN_NOT_OK(RemoveChecksumSidecar(path));
  CT_ASSIGN_OR_RETURN(auto file,
                      PageManager::Create(path, std::move(io_stats)));
  auto tree = std::unique_ptr<PackedRTree>(
      new PackedRTree(std::move(file), options, pool));
  PageManager* pm = tree->file_.get();
  // A packed tree is immutable once built: compute per-page checksums now,
  // once per epoch, and verify on every subsequent read.
  pm->StartChecksumTracking();

  // Reserve the meta page; it is filled in (one random write) at the end.
  CT_RETURN_NOT_OK(pm->AllocatePage().status());

  struct LevelEntry {
    Rect mbr;
    PageId page;
  };
  std::vector<LevelEntry> level;

  // --- Leaf level -------------------------------------------------------
  Page leaf;
  uint16_t in_leaf = 0;
  uint16_t leaf_target = 0;
  uint8_t leaf_arity = 0;
  uint32_t leaf_view = 0;
  Rect leaf_mbr;
  bool leaf_open = false;
  uint64_t num_points = 0;
  Coord prev_coords[kMaxDims];
  bool have_prev = false;

  auto flush_leaf = [&]() -> Status {
    RNodeSetCount(leaf.data, in_leaf);
    CT_ASSIGN_OR_RETURN(PageId id, pm->AppendPage(leaf));
    level.push_back(LevelEntry{leaf_mbr, id});
    leaf_open = false;
    return Status::OK();
  };

  while (true) {
    const PointRecord* rec = nullptr;
    CT_RETURN_NOT_OK(source->Next(&rec));
    if (rec == nullptr) break;
    if (options.enforce_pack_order && have_prev &&
        PackOrderCompare(prev_coords, rec->coords, options.dims) >= 0) {
      return Status::InvalidArgument(
          "rtree: bulk-load input not strictly ascending in pack order");
    }
    std::memcpy(prev_coords, rec->coords, sizeof(prev_coords));
    have_prev = true;

    const uint8_t arity =
        options.compress_leaves ? view_arity(rec->view_id) : options.dims;
    if (leaf_open && (rec->view_id != leaf_view || in_leaf == leaf_target)) {
      CT_RETURN_NOT_OK(flush_leaf());
    }
    if (!leaf_open) {
      leaf.Zero();
      leaf_arity = arity;
      leaf_view = rec->view_id;
      leaf_target = std::max<uint16_t>(
          1, static_cast<uint16_t>(RLeafCapacity(leaf_arity) *
                                   std::clamp(options.leaf_fill, 0.1, 1.0)));
      if (options.max_leaf_entries > 0) {
        leaf_target = std::min(leaf_target, options.max_leaf_entries);
      }
      RNodeSetHeader(leaf.data, /*is_leaf=*/true, leaf_arity, 0, leaf_view);
      in_leaf = 0;
      leaf_mbr = Rect::FromPoint(rec->coords, options.dims);
      leaf_open = true;
    }
    CT_DCHECK(leaf_arity <= options.dims)
        << "view arity exceeds tree dimensionality";
    CT_DCHECK(in_leaf < RLeafCapacity(leaf_arity))
        << "leaf overflow during bulk load";
    char* dest = leaf.data + kRNodeHeaderSize +
                 static_cast<size_t>(in_leaf) * RLeafEntryBytes(leaf_arity);
    RLeafWriteEntry(dest, rec->coords, leaf_arity, rec->agg);
    leaf_mbr.ExpandToPoint(rec->coords, options.dims);
    ++in_leaf;
    ++num_points;
  }
  if (leaf_open) {
    CT_RETURN_NOT_OK(flush_leaf());
  }
  tree->num_points_ = num_points;
  tree->num_leaf_pages_ = static_cast<PageId>(level.size());
  {
    // MergePack funnels through Build too, so these cover both the
    // initial bulk load and every incremental refresh.
    auto& reg = obs::MetricsRegistry::Instance();
    static obs::Counter* const points_packed =
        reg.GetCounter("rtree.points_packed");
    static obs::Counter* const leaves_written =
        reg.GetCounter("rtree.leaves_written");
    points_packed->Increment(num_points);
    leaves_written->Increment(level.size());
  }

  if (level.empty()) {
    tree->root_ = kInvalidPageId;
    tree->height_ = 0;
    Page meta;
    WriteMetaPage(&meta, options, kInvalidPageId, 0, 0, 0);
    CT_RETURN_NOT_OK(pm->WritePage(0, meta));
    CT_FAULT("rtree.build.sync");
    CT_RETURN_NOT_OK(pm->Sync());
    CT_RETURN_NOT_OK(pm->FinalizeChecksums());
    return tree;
  }

  // --- Internal levels, bottom-up ---------------------------------------
  uint32_t height = 1;
  uint16_t fanout = std::max<uint16_t>(
      2, static_cast<uint16_t>(RInternalCapacity(options.dims) *
                               std::clamp(options.internal_fill, 0.1, 1.0)));
  if (options.max_internal_entries > 1) {
    fanout = std::min(fanout, options.max_internal_entries);
  }
  Page node;
  while (level.size() > 1) {
    std::vector<LevelEntry> next_level;
    size_t i = 0;
    while (i < level.size()) {
      const size_t children = std::min<size_t>(fanout, level.size() - i);
      node.Zero();
      RNodeSetHeader(node.data, /*is_leaf=*/false, options.dims,
                     static_cast<uint16_t>(children), 0);
      Rect mbr = level[i].mbr;
      for (size_t c = 0; c < children; ++c) {
        char* dest = node.data + kRNodeHeaderSize +
                     c * RInternalEntryBytes(options.dims);
        RInternalWriteEntry(dest, level[i + c].mbr, options.dims,
                            level[i + c].page);
        mbr.ExpandToRect(level[i + c].mbr, options.dims);
      }
      CT_ASSIGN_OR_RETURN(PageId id, pm->AppendPage(node));
      next_level.push_back(LevelEntry{mbr, id});
      i += children;
    }
    level.swap(next_level);
    ++height;
  }
  tree->root_ = level[0].page;
  tree->height_ = height;

  Page meta;
  WriteMetaPage(&meta, options, tree->root_, tree->height_, num_points,
                tree->num_leaf_pages_);
  CT_RETURN_NOT_OK(pm->WritePage(0, meta));
  // Make the fresh tree durable before the forest manifest can name it:
  // the manifest commit protocol assumes every file it references has
  // already reached stable storage.
  CT_FAULT("rtree.build.sync");
  CT_RETURN_NOT_OK(pm->Sync());
  // Sidecar after data sync: the checksums describe what is durably on
  // disk, and both precede the manifest commit that names this file.
  CT_RETURN_NOT_OK(pm->FinalizeChecksums());
  return tree;
}

Result<std::unique_ptr<PackedRTree>> PackedRTree::Open(
    const std::string& path, BufferPool* pool,
    std::shared_ptr<IoStats> io_stats) {
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Open(path, std::move(io_stats)));
  if (Status cs = file->LoadChecksums(); !cs.ok()) {
    // NotFound = pre-checksum file (manifest v1): reads stay unverified
    // for back-compat. Anything else means the sidecar exists but is
    // unusable — surface it so the tree is quarantined, not trusted.
    if (!cs.IsNotFound()) return cs;
  }
  Page meta;
  CT_RETURN_NOT_OK(file->ReadPage(0, &meta));
  const char* p = meta.data;
  if (DecodeFixed32(p) != kRTreeMagic) {
    return Status::Corruption("rtree: bad magic in " + path);
  }
  RTreeOptions options;
  options.dims = static_cast<uint8_t>(p[4]);
  options.compress_leaves = p[5] != 0;
  auto tree = std::unique_ptr<PackedRTree>(
      new PackedRTree(std::move(file), options, pool));
  tree->root_ = DecodeFixed32(p + 8);
  tree->height_ = DecodeFixed32(p + 12);
  tree->num_points_ = DecodeFixed64(p + 16);
  tree->num_leaf_pages_ = DecodeFixed32(p + 24);
  return tree;
}

Status PackedRTree::CollectLeaves(PageId node_id, const Rect& query,
                                  std::vector<PageId>* leaves,
                                  SearchStats* stats) {
  CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), node_id));
  const char* page = handle.data();
  if (RNodeIsLeaf(page)) {
    // Descent should never fetch a leaf (the id range test below keeps it
    // out of them); if the invariant is ever violated, still answer
    // correctly by handing the page to the scan phase.
    leaves->push_back(node_id);
    return Status::OK();
  }
  ++stats->internal_pages;
  const uint16_t count = RNodeCount(page);
  const size_t entry_bytes = RInternalEntryBytes(options_.dims);
  // Collect matching children first so the handle is released before
  // recursion (keeps pinned frames bounded by tree height). Children in
  // the leaf id range go straight to the candidate list; packing builds
  // each internal node over a single level, so a node's children are
  // either all leaves or all internal and DFS entry order is preserved.
  std::vector<PageId> matches;
  Rect mbr;
  PageId child;
  for (uint16_t i = 0; i < count; ++i) {
    RInternalReadEntry(page + kRNodeHeaderSize + i * entry_bytes,
                       options_.dims, &mbr, &child);
    if (!query.Intersects(mbr, options_.dims)) continue;
    if (child != 0 && child <= num_leaf_pages_) {
      leaves->push_back(child);
    } else {
      matches.push_back(child);
    }
  }
  handle.Release();
  for (PageId m : matches) {
    CT_RETURN_NOT_OK(CollectLeaves(m, query, leaves, stats));
  }
  return Status::OK();
}

Status PackedRTree::ScanLeaf(
    PageId leaf_id, const Rect& query,
    const std::function<void(const PointRecord&)>& emit, SearchStats* stats) {
  CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), leaf_id));
  const char* page = handle.data();
  if (!RNodeIsLeaf(page)) {
    return Status::Corruption("rtree: expected leaf page in " + path());
  }
  ++stats->leaf_pages;
  const uint16_t count = RNodeCount(page);
  const uint8_t arity = RNodeArity(page);
  const uint32_t view_id = RNodeViewId(page);
  CT_DCHECK(arity <= options_.dims) << "corrupt leaf arity in " << path();
  CT_DCHECK(count <= RLeafCapacity(arity))
      << "corrupt leaf count in " << path();
  const size_t entry_bytes = RLeafEntryBytes(arity);
  PointRecord rec;
  for (uint16_t i = 0; i < count; ++i) {
    RLeafReadEntry(page + kRNodeHeaderSize + i * entry_bytes, arity, view_id,
                   &rec);
    ++stats->points_examined;
    if (query.ContainsPoint(rec.coords, options_.dims)) {
      ++stats->points_emitted;
      emit(rec);
    }
  }
  return Status::OK();
}

Status PackedRTree::Search(const Rect& query,
                           const std::function<void(const PointRecord&)>& emit,
                           SearchStats* stats) {
  if (root_ == kInvalidPageId) return Status::OK();
  SearchStats local;
  SearchStats* s = stats != nullptr ? stats : &local;
  std::vector<PageId> leaves;
  {
    obs::Span descent("rtree.descent");
    if (root_ != 0 && root_ <= num_leaf_pages_) {
      // Single-leaf tree: no internal levels to descend.
      leaves.push_back(root_);
    } else {
      CT_RETURN_NOT_OK(CollectLeaves(root_, query, &leaves, s));
    }
    if (descent.active()) {
      descent.Annotate("internal_pages", s->internal_pages);
      descent.Annotate("candidate_leaves",
                       static_cast<uint64_t>(leaves.size()));
    }
  }
  {
    obs::Span scan("rtree.scan");
    for (PageId leaf : leaves) {
      CT_RETURN_NOT_OK(ScanLeaf(leaf, query, emit, s));
    }
    if (scan.active()) {
      scan.Annotate("leaf_pages", s->leaf_pages);
      scan.Annotate("points_examined", s->points_examined);
      scan.Annotate("points_emitted", s->points_emitted);
    }
  }
  return Status::OK();
}

namespace {

/// Recursion helper for Validate: computes the actual bounding box of the
/// subtree at `node` while checking invariants.
struct ValidateContext {
  PageManager* file;
  BufferPool* pool;
  uint8_t dims;
  uint64_t points = 0;
};

Status ValidateNode(ValidateContext* ctx, PageId node_id, Rect* bounds) {
  CT_ASSIGN_OR_RETURN(PageHandle handle,
                      ctx->pool->Fetch(ctx->file, node_id));
  const char* page = handle.data();
  const uint16_t count = RNodeCount(page);
  if (count == 0) {
    return Status::Corruption("rtree validate: empty node " +
                              std::to_string(node_id));
  }
  if (RNodeIsLeaf(page)) {
    const uint8_t arity = RNodeArity(page);
    const uint32_t view_id = RNodeViewId(page);
    const size_t entry_bytes = RLeafEntryBytes(arity);
    PointRecord rec;
    for (uint16_t i = 0; i < count; ++i) {
      RLeafReadEntry(page + kRNodeHeaderSize + i * entry_bytes, arity,
                     view_id, &rec);
      for (size_t d = arity; d < ctx->dims; ++d) {
        if (rec.coords[d] != 0) {
          return Status::Corruption(
              "rtree validate: non-zero suppressed coordinate");
        }
      }
      if (i == 0) {
        *bounds = Rect::FromPoint(rec.coords, ctx->dims);
      } else {
        bounds->ExpandToPoint(rec.coords, ctx->dims);
      }
      ++ctx->points;
    }
    return Status::OK();
  }
  const size_t entry_bytes = RInternalEntryBytes(ctx->dims);
  std::vector<std::pair<Rect, PageId>> children;
  Rect mbr;
  PageId child;
  for (uint16_t i = 0; i < count; ++i) {
    RInternalReadEntry(page + kRNodeHeaderSize + i * entry_bytes, ctx->dims,
                       &mbr, &child);
    children.push_back({mbr, child});
    if (i == 0) {
      *bounds = mbr;
    } else {
      bounds->ExpandToRect(mbr, ctx->dims);
    }
  }
  handle.Release();
  for (const auto& [claimed, child_id] : children) {
    Rect actual;
    CT_RETURN_NOT_OK(ValidateNode(ctx, child_id, &actual));
    for (size_t d = 0; d < ctx->dims; ++d) {
      if (actual.lo[d] < claimed.lo[d] || actual.hi[d] > claimed.hi[d]) {
        return Status::Corruption(
            "rtree validate: child " + std::to_string(child_id) +
            " exceeds its parent MBR in dim " + std::to_string(d));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status PackedRTree::Validate() {
  if (root_ == kInvalidPageId) {
    if (num_points_ != 0) {
      return Status::Corruption("rtree validate: no root but points > 0");
    }
    return Status::OK();
  }
  ValidateContext ctx{file_.get(), pool_, options_.dims};
  Rect bounds;
  CT_RETURN_NOT_OK(ValidateNode(&ctx, root_, &bounds));
  if (ctx.points != num_points_) {
    return Status::Corruption("rtree validate: point count mismatch");
  }
  // Global pack order and single-view leaves, via the sequential scan.
  Scanner scanner = ScanAll();
  Coord prev[kMaxDims];
  bool have_prev = false;
  uint64_t scanned = 0;
  uint32_t last_view = 0;
  std::set<uint32_t> closed_views;
  while (true) {
    const PointRecord* rec = nullptr;
    CT_RETURN_NOT_OK(scanner.Next(&rec));
    if (rec == nullptr) break;
    if (have_prev &&
        PackOrderCompare(prev, rec->coords, options_.dims) >= 0) {
      return Status::Corruption("rtree validate: leaves not in pack order");
    }
    std::memcpy(prev, rec->coords, sizeof(prev));
    have_prev = true;
    if (scanned == 0 || rec->view_id != last_view) {
      // A view's run must be contiguous: once left, it cannot reappear.
      if (scanned > 0) closed_views.insert(last_view);
      if (closed_views.count(rec->view_id)) {
        return Status::Corruption(
            "rtree validate: view leaves are interleaved");
      }
      last_view = rec->view_id;
    }
    ++scanned;
  }
  if (scanned != num_points_) {
    return Status::Corruption("rtree validate: scan count mismatch");
  }
  return Status::OK();
}

Status PackedRTree::Scanner::Next(const PointRecord** record) {
  while (true) {
    if (!loaded_) {
      if (next_page_ > tree_->num_leaf_pages_) {
        *record = nullptr;
        return Status::OK();
      }
      CT_RETURN_NOT_OK(tree_->file_->ReadPage(next_page_, &page_));
      // Pages 1..num_leaf_pages are leaves by the packed file layout.
      CT_DCHECK(RNodeIsLeaf(page_.data))
          << "non-leaf page " << next_page_ << " in the leaf region of "
          << tree_->path();
      ++next_page_;
      count_ = RNodeCount(page_.data);
      slot_ = 0;
      loaded_ = true;
    }
    if (slot_ < count_) {
      const uint8_t arity = RNodeArity(page_.data);
      const uint32_t view_id = RNodeViewId(page_.data);
      RLeafReadEntry(
          page_.data + kRNodeHeaderSize + slot_ * RLeafEntryBytes(arity),
          arity, view_id, &record_);
      ++slot_;
      *record = &record_;
      return Status::OK();
    }
    loaded_ = false;
  }
}

}  // namespace cubetree
