#ifndef CUBETREE_RTREE_ZORDER_H_
#define CUBETREE_RTREE_ZORDER_H_

#include <cstdint>

#include "rtree/geometry.h"

namespace cubetree {

/// Z-order (Morton) comparison of two points without materializing the
/// interleaved key: the point with the smaller coordinate in the dimension
/// holding the most significant differing bit comes first (Chan's
/// XOR-MSB trick). This is the family of space-filling-curve sort orders
/// ([FR89]) that the paper's Section 2.3 explicitly decides *against* for
/// Cubetree packing, because an interleaved order destroys the contiguity
/// of each view's leaf run (and with it the zero-suppression compression
/// and the clean merge-pack). It is implemented here for the ablation that
/// quantifies that decision.
inline int ZOrderCompare(const Coord* a, const Coord* b, size_t dims) {
  // `best` tracks the XOR with the highest set bit seen so far; the
  // classic less-msb test (x < y && x < (x ^ y)) finds whether a new XOR's
  // top bit exceeds it. Within one bit level the interleaving puts the
  // highest dimension first, so ties must keep the higher dimension —
  // hence the reverse iteration with a strict comparison.
  uint32_t best = 0;
  size_t best_dim = 0;
  for (size_t d = dims; d > 0; --d) {
    const uint32_t x = a[d - 1] ^ b[d - 1];
    if (best < x && best < (best ^ x)) {
      best = x;
      best_dim = d - 1;
    }
  }
  if (best == 0) return 0;
  return a[best_dim] < b[best_dim] ? -1 : 1;
}

}  // namespace cubetree

#endif  // CUBETREE_RTREE_ZORDER_H_
