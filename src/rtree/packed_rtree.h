#ifndef CUBETREE_RTREE_PACKED_RTREE_H_
#define CUBETREE_RTREE_PACKED_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rtree/geometry.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"

namespace cubetree {

/// Build/search options of one packed R-tree file.
struct RTreeOptions {
  /// Dimensionality of the index space (1..kMaxDims).
  uint8_t dims = 3;
  /// Leaf fill fraction; 1.0 = packed to capacity (the paper's setting).
  double leaf_fill = 1.0;
  /// Internal-node fill fraction.
  double internal_fill = 1.0;
  /// Hard caps on entries per node (0 = page capacity). Used by tests and
  /// the paper-example program to reproduce the small fan-out figures.
  uint16_t max_leaf_entries = 0;
  uint16_t max_internal_entries = 0;
  /// Suppress implicit-zero coordinates on leaves (the paper's compression).
  /// Off stores full-width entries — kept as an ablation switch.
  bool compress_leaves = true;
  /// Verify at build time that the input arrives in strict pack order.
  /// Disable ONLY to bulk-load an alternative sort order (e.g. the Z-order
  /// ablation); such a tree still answers box queries correctly, but view
  /// runs are no longer contiguous and merge-pack no longer applies.
  bool enforce_pack_order = true;
};

/// Pull stream of points in pack order; the input to bulk loading.
class PointSource {
 public:
  virtual ~PointSource() = default;
  /// Sets *record to the next point or nullptr at end.
  virtual Status Next(const PointRecord** record) = 0;
};

/// PointSource over an in-memory vector (used by tests and small builds).
class VectorPointSource : public PointSource {
 public:
  explicit VectorPointSource(std::vector<PointRecord> points)
      : points_(std::move(points)) {}

  Status Next(const PointRecord** record) override {
    if (pos_ >= points_.size()) {
      *record = nullptr;
      return Status::OK();
    }
    *record = &points_[pos_++];
    return Status::OK();
  }

 private:
  std::vector<PointRecord> points_;
  size_t pos_ = 0;
};

/// Counters for one Search call.
struct SearchStats {
  uint64_t internal_pages = 0;
  uint64_t leaf_pages = 0;
  uint64_t points_examined = 0;
  uint64_t points_emitted = 0;
};

/// A packed, compressed R-tree: the physical half of a Cubetree.
///
/// The tree is immutable once built. Bulk loading consumes points sorted in
/// pack order (PackOrderCompare) and writes the file strictly sequentially:
/// leaves first, then each internal level bottom-up, root last, finally the
/// metadata page (page 0). Each leaf holds points of exactly one view, so
/// leaves store only the view's arity coordinates per entry (zero
/// suppression). Updates are performed by merge-packing into a new file (see
/// cubetree/merge_pack.h) — there is no in-place insert, by design.
class PackedRTree {
 public:
  /// Bulk-builds a tree at `path` from `source` (sorted in pack order; view
  /// boundaries must be respected by the order, which SelectMapping
  /// guarantees). `view_arity(view_id)` gives the number of significant
  /// coordinates of each view.
  static Result<std::unique_ptr<PackedRTree>> Build(
      const std::string& path, const RTreeOptions& options, BufferPool* pool,
      PointSource* source, std::function<uint8_t(uint32_t)> view_arity,
      std::shared_ptr<IoStats> io_stats = nullptr);

  /// Opens an existing tree file.
  static Result<std::unique_ptr<PackedRTree>> Open(
      const std::string& path, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  ~PackedRTree();

  PackedRTree(const PackedRTree&) = delete;
  PackedRTree& operator=(const PackedRTree&) = delete;

  /// Emits every point contained in `query` (over the first dims()
  /// coordinates). Points carry their view_id; callers typically restrict
  /// the query rect so only one view's region matches.
  Status Search(const Rect& query,
                const std::function<void(const PointRecord&)>& emit,
                SearchStats* stats = nullptr);

  /// Sequential pack-order scan over all points (merge-pack input). Reads
  /// leaf pages directly (sequential I/O, bypassing the pool).
  class Scanner {
   public:
    /// Sets *record to the next point or nullptr at end.
    Status Next(const PointRecord** record);

   private:
    friend class PackedRTree;
    explicit Scanner(PackedRTree* tree) : tree_(tree) {}

    PackedRTree* tree_;
    Page page_;
    PageId next_page_ = 1;  // Leaves start right after the meta page.
    uint16_t slot_ = 0;
    uint16_t count_ = 0;
    bool loaded_ = false;
    PointRecord record_;
  };

  Scanner ScanAll() { return Scanner(this); }

  /// Structural self-check: verifies that every internal entry's MBR
  /// contains its child's actual bounding box, that leaf points are in
  /// strict pack order globally, that each leaf holds a single view, and
  /// that the point count matches the metadata. O(file size); intended
  /// for tests and offline fsck-style tooling.
  Status Validate();

  uint8_t dims() const { return options_.dims; }
  uint64_t num_points() const { return num_points_; }
  uint32_t height() const { return height_; }
  PageId num_leaf_pages() const { return num_leaf_pages_; }
  uint64_t FileSizeBytes() const { return file_->FileSizeBytes(); }
  const std::string& path() const { return file_->path(); }
  const RTreeOptions& tree_options() const { return options_; }
  /// True when every page read of this tree is checksum-verified (the
  /// `.crc` sidecar was written at build time or loaded at open).
  bool checksums_enabled() const { return file_->checksums_enabled(); }

 private:
  PackedRTree(std::unique_ptr<PageManager> file, RTreeOptions options,
              BufferPool* pool);

  /// Search runs in two phases so traces show honest "descent" and "scan"
  /// costs. Descent walks internal pages only, collecting qualifying leaf
  /// page ids in DFS entry order (the layout invariant — leaves occupy
  /// pages 1..num_leaf_pages_ — lets a child be classified without
  /// fetching it); the scan phase then fetches each collected leaf and
  /// emits its matching points. Emission order matches the old interleaved
  /// recursion exactly, because every internal node's children live on one
  /// level (bottom-up packing), so no node mixes leaf and internal
  /// children.
  Status CollectLeaves(PageId node, const Rect& query,
                       std::vector<PageId>* leaves, SearchStats* stats);
  Status ScanLeaf(PageId leaf, const Rect& query,
                  const std::function<void(const PointRecord&)>& emit,
                  SearchStats* stats);

  std::unique_ptr<PageManager> file_;
  RTreeOptions options_;
  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t num_points_ = 0;
  PageId num_leaf_pages_ = 0;
};

}  // namespace cubetree

#endif  // CUBETREE_RTREE_PACKED_RTREE_H_
