#ifndef CUBETREE_RTREE_NODE_H_
#define CUBETREE_RTREE_NODE_H_

#include <cstdint>
#include <cstring>

#include "common/coding.h"
#include "rtree/geometry.h"
#include "storage/page.h"

namespace cubetree {

// On-page layouts of packed R-tree nodes.
//
// Every node starts with an 8-byte header:
//   [0]    uint8  is_leaf
//   [1]    uint8  arity   (leaves: stored coordinates per entry)
//   [2..3] uint16 entry count
//   [4..7] uint32 view_id (leaves) / unused (internal)
//
// Leaf entries (compressed): arity * 4 bytes of coordinates followed by the
// 12-byte aggregate payload. Coordinates arity..dims-1 are implicitly zero —
// this is the paper's leaf compression, legal because packing places each
// view in its own contiguous run of leaves.
//
// Internal entries: 2 * dims * 4 bytes MBR (lo then hi) + 4-byte child page.

inline constexpr size_t kRNodeHeaderSize = 8;

inline bool RNodeIsLeaf(const char* page) { return page[0] != 0; }
inline uint8_t RNodeArity(const char* page) {
  return static_cast<uint8_t>(page[1]);
}
inline uint16_t RNodeCount(const char* page) {
  uint16_t v;
  std::memcpy(&v, page + 2, sizeof(v));
  return v;
}
inline uint32_t RNodeViewId(const char* page) { return DecodeFixed32(page + 4); }

inline void RNodeSetHeader(char* page, bool is_leaf, uint8_t arity,
                           uint16_t count, uint32_t view_id) {
  page[0] = is_leaf ? 1 : 0;
  page[1] = static_cast<char>(arity);
  std::memcpy(page + 2, &count, sizeof(count));
  EncodeFixed32(page + 4, view_id);
}
inline void RNodeSetCount(char* page, uint16_t count) {
  std::memcpy(page + 2, &count, sizeof(count));
}

inline size_t RLeafEntryBytes(uint8_t arity) {
  return static_cast<size_t>(arity) * sizeof(Coord) + kAggValueBytes;
}
inline size_t RInternalEntryBytes(uint8_t dims) {
  return 2 * static_cast<size_t>(dims) * sizeof(Coord) + sizeof(uint32_t);
}

inline uint16_t RLeafCapacity(uint8_t arity) {
  return static_cast<uint16_t>((kPageSize - kRNodeHeaderSize) /
                               RLeafEntryBytes(arity));
}
inline uint16_t RInternalCapacity(uint8_t dims) {
  return static_cast<uint16_t>((kPageSize - kRNodeHeaderSize) /
                               RInternalEntryBytes(dims));
}

/// Writes one leaf entry at `dest`.
inline void RLeafWriteEntry(char* dest, const Coord* coords, uint8_t arity,
                            const AggValue& agg) {
  std::memcpy(dest, coords, static_cast<size_t>(arity) * sizeof(Coord));
  char* p = dest + static_cast<size_t>(arity) * sizeof(Coord);
  EncodeFixed64(p, static_cast<uint64_t>(agg.sum));
  EncodeFixed32(p + 8, agg.count);
}

/// Reads one leaf entry from `src` into a full-width point record, zeroing
/// the suppressed coordinates.
inline void RLeafReadEntry(const char* src, uint8_t arity, uint32_t view_id,
                           PointRecord* out) {
  out->view_id = view_id;
  std::memcpy(out->coords, src, static_cast<size_t>(arity) * sizeof(Coord));
  for (size_t i = arity; i < kMaxDims; ++i) out->coords[i] = 0;
  const char* p = src + static_cast<size_t>(arity) * sizeof(Coord);
  out->agg.sum = static_cast<int64_t>(DecodeFixed64(p));
  out->agg.count = DecodeFixed32(p + 8);
}

/// Writes one internal entry (MBR + child) at `dest`.
inline void RInternalWriteEntry(char* dest, const Rect& mbr, uint8_t dims,
                                PageId child) {
  std::memcpy(dest, mbr.lo, static_cast<size_t>(dims) * sizeof(Coord));
  std::memcpy(dest + static_cast<size_t>(dims) * sizeof(Coord), mbr.hi,
              static_cast<size_t>(dims) * sizeof(Coord));
  EncodeFixed32(dest + 2 * static_cast<size_t>(dims) * sizeof(Coord), child);
}

/// Reads one internal entry.
inline void RInternalReadEntry(const char* src, uint8_t dims, Rect* mbr,
                               PageId* child) {
  std::memcpy(mbr->lo, src, static_cast<size_t>(dims) * sizeof(Coord));
  std::memcpy(mbr->hi, src + static_cast<size_t>(dims) * sizeof(Coord),
              static_cast<size_t>(dims) * sizeof(Coord));
  for (size_t i = dims; i < kMaxDims; ++i) {
    mbr->lo[i] = 0;
    mbr->hi[i] = 0;
  }
  *child = DecodeFixed32(src + 2 * static_cast<size_t>(dims) * sizeof(Coord));
}

}  // namespace cubetree

#endif  // CUBETREE_RTREE_NODE_H_
