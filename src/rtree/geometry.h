#ifndef CUBETREE_RTREE_GEOMETRY_H_
#define CUBETREE_RTREE_GEOMETRY_H_

#include <cstdint>
#include <string>

namespace cubetree {

/// Maximum dimensionality of a Cubetree index space.
inline constexpr size_t kMaxDims = 8;

/// Coordinates are unsigned 32-bit key values. The paper reserves 0 as the
/// "unused dimension" marker: every real key value (partkey, suppkey, ...)
/// is >= 1, and a view of arity k stored in a d-dimensional tree (k < d) has
/// coordinates k..d-1 equal to 0.
using Coord = uint32_t;

inline constexpr Coord kCoordMax = 0xFFFFFFFFu;

/// Aggregate payload carried by every point. Sum and count together support
/// SUM, COUNT and AVG — the paper's footnote 3 notes the scheme extends to
/// multiple aggregate functions per point.
struct AggValue {
  int64_t sum = 0;
  uint32_t count = 0;

  void Merge(const AggValue& other) {
    sum += other.sum;
    count += other.count;
  }

  double Avg() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  bool operator==(const AggValue&) const = default;
};

/// On-disk payload width: int64 sum + uint32 count.
inline constexpr size_t kAggValueBytes = 12;

/// A point of the multidimensional index space together with its view tag
/// and aggregate payload. Unused coordinates (>= arity of the owning view)
/// must be zero.
struct PointRecord {
  uint32_t view_id = 0;
  Coord coords[kMaxDims] = {0};
  AggValue agg;
};

/// Axis-aligned hyper-rectangle over the first `dims` coordinates.
struct Rect {
  Coord lo[kMaxDims] = {0};
  Coord hi[kMaxDims] = {0};

  /// A rect covering the full space in `dims` dimensions.
  static Rect Full(size_t dims) {
    Rect r;
    for (size_t i = 0; i < dims; ++i) {
      r.lo[i] = 0;
      r.hi[i] = kCoordMax;
    }
    return r;
  }

  /// The degenerate rect equal to a point.
  static Rect FromPoint(const Coord* coords, size_t dims) {
    Rect r;
    for (size_t i = 0; i < dims; ++i) {
      r.lo[i] = coords[i];
      r.hi[i] = coords[i];
    }
    return r;
  }

  bool ContainsPoint(const Coord* coords, size_t dims) const {
    for (size_t i = 0; i < dims; ++i) {
      if (coords[i] < lo[i] || coords[i] > hi[i]) return false;
    }
    return true;
  }

  bool Intersects(const Rect& other, size_t dims) const {
    for (size_t i = 0; i < dims; ++i) {
      if (other.hi[i] < lo[i] || other.lo[i] > hi[i]) return false;
    }
    return true;
  }

  /// Grows this rect to cover `coords`.
  void ExpandToPoint(const Coord* coords, size_t dims) {
    for (size_t i = 0; i < dims; ++i) {
      if (coords[i] < lo[i]) lo[i] = coords[i];
      if (coords[i] > hi[i]) hi[i] = coords[i];
    }
  }

  /// Grows this rect to cover `other`.
  void ExpandToRect(const Rect& other, size_t dims) {
    for (size_t i = 0; i < dims; ++i) {
      if (other.lo[i] < lo[i]) lo[i] = other.lo[i];
      if (other.hi[i] > hi[i]) hi[i] = other.hi[i];
    }
  }

  std::string ToString(size_t dims) const;
};

/// The Cubetree packing order: points are sorted by the LAST coordinate
/// first, then the one before it, and so on — e.g. R{x,y} sorts in (y, x)
/// order. Because unused coordinates are zero and real keys are >= 1, this
/// order places each view of a tree in its own contiguous range (lowest
/// arity first), which is what makes per-view leaf compression and
/// merge-packing possible.
///
/// Returns negative/zero/positive like memcmp.
inline int PackOrderCompare(const Coord* a, const Coord* b, size_t dims) {
  for (size_t i = dims; i > 0; --i) {
    if (a[i - 1] < b[i - 1]) return -1;
    if (a[i - 1] > b[i - 1]) return 1;
  }
  return 0;
}

}  // namespace cubetree

#endif  // CUBETREE_RTREE_GEOMETRY_H_
