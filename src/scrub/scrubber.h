#ifndef CUBETREE_SCRUB_SCRUBBER_H_
#define CUBETREE_SCRUB_SCRUBBER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "cubetree/forest.h"

namespace cubetree {

/// Scrubber configuration, settable in code or through the environment:
///   CUBETREE_SCRUB_ENABLE=1       start the background thread
///   CUBETREE_SCRUB_RATE=N         throttle to N pages/second (0 = none)
///   CUBETREE_SCRUB_INTERVAL_MS=N  pause between passes (default 60000)
struct ScrubOptions {
  bool enabled = false;
  /// Pages per second; 0 scrubs unthrottled.
  uint64_t pages_per_second = 0;
  /// Sleep between the end of one pass and the start of the next.
  uint64_t interval_ms = 60000;

  static ScrubOptions FromEnv();
};

/// Counters of one scrub pass.
struct ScrubPassStats {
  uint64_t files_scanned = 0;
  uint64_t pages_scrubbed = 0;
  /// Files without a checksum sidecar (pre-checksum generations): read but
  /// not verifiable, so corruption in them is invisible to the scrubber.
  uint64_t files_unverified = 0;
  uint64_t corruptions_found = 0;
  uint64_t corruptions_repaired = 0;
  uint64_t corruptions_unrepairable = 0;
};

/// Background integrity scrubber: periodically walks every file of the
/// live forest generation and re-reads each page, letting the storage
/// layer's verify-on-read surface latent corruption before a query ever
/// touches it. Each pass pins a ForestSnapshot, so epoch-based reclamation
/// keeps every scanned file alive even while refreshes retire it, and the
/// scrubber never blocks mutators (it takes no forest lock).
///
/// On corruption the affected tree is quarantined through
/// CubetreeForest::QuarantineForCorruption — passing the exact file path,
/// so a tree that a refresh already replaced is left alone — and the
/// optional repair callback (typically CubetreeEngine replica repair) is
/// invoked to rebuild it. A corruption that remains quarantined after the
/// callback counts as unrepairable.
///
/// Scrubbing reads bypass the buffer pool on a private PageManager: the
/// point is to exercise the bytes on disk, not the cache, and pool
/// hit-rate metrics stay untouched.
class Scrubber {
 public:
  /// Invoked after a corrupt tree is quarantined; returns OK when every
  /// quarantined tree was rebuilt.
  using RepairFn = std::function<Status()>;

  Scrubber(CubetreeForest* forest, ScrubOptions options,
           RepairFn repair = nullptr);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Builds a scrubber from the CUBETREE_SCRUB_* environment, or nullptr
  /// when CUBETREE_SCRUB_ENABLE is unset/0. The caller owns starting it.
  static std::unique_ptr<Scrubber> CreateFromEnv(CubetreeForest* forest,
                                                 RepairFn repair = nullptr);

  /// Runs one full pass synchronously (tests, ctfsck). Returns OK even
  /// when corruption was found — findings are in `*stats` and the metrics;
  /// a non-OK status means the pass itself could not run.
  Status ScrubOnce(ScrubPassStats* stats = nullptr);

  /// Starts the background thread (idempotent).
  void Start();
  /// Stops and joins the background thread (idempotent; the destructor
  /// also calls it).
  void Stop();

  uint64_t passes_completed() const {
    return passes_.load(std::memory_order_relaxed);
  }

  /// Pauses (or resumes) the repair callback without stopping scanning.
  /// While paused, corruption is still detected and quarantined — reads
  /// stay safe — but no rebuild is attempted: repair writes fresh tree
  /// generations, which is exactly what a disk-full degraded mode must not
  /// do. Findings made while paused count as unrepairable.
  void SetRepairPaused(bool paused) {
    repair_paused_.store(paused, std::memory_order_relaxed);
  }
  bool repair_paused() const {
    return repair_paused_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  /// The repair callback, gated by the pause switch.
  bool TryRepair(uint32_t first_view_id);
  /// Scrubs one data file; `first_view_id` identifies the owning tree for
  /// quarantine. Updates `*stats` in place.
  void ScrubFile(const std::string& path, uint32_t first_view_id,
                 ScrubPassStats* stats);

  CubetreeForest* forest_;
  ScrubOptions options_;
  RepairFn repair_;
  std::atomic<uint64_t> passes_{0};
  std::atomic<bool> repair_paused_{false};

  Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_ GUARDED_BY(mu_);
};

}  // namespace cubetree

#endif  // CUBETREE_SCRUB_SCRUBBER_H_
