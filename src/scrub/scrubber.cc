#include "scrub/scrubber.h"

#include <chrono>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "cubetree/cubetree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/page.h"
#include "storage/page_manager.h"

namespace cubetree {

namespace {

struct ScrubMetrics {
  obs::Counter* passes;
  obs::Counter* pages_scrubbed;
  obs::Counter* corruptions_found;
  obs::Counter* corruptions_repaired;
  obs::Counter* corruptions_unrepairable;

  static const ScrubMetrics& Get() {
    static const ScrubMetrics m = {
        obs::MetricsRegistry::Instance().GetCounter("scrub.passes"),
        obs::MetricsRegistry::Instance().GetCounter("scrub.pages_scrubbed"),
        obs::MetricsRegistry::Instance().GetCounter("scrub.corruptions_found"),
        obs::MetricsRegistry::Instance().GetCounter(
            "scrub.corruptions_repaired"),
        obs::MetricsRegistry::Instance().GetCounter(
            "scrub.corruptions_unrepairable"),
    };
    return m;
  }
};

uint64_t EnvUint64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<uint64_t>(v);
}

}  // namespace

ScrubOptions ScrubOptions::FromEnv() {
  ScrubOptions options;
  options.enabled = EnvUint64("CUBETREE_SCRUB_ENABLE", 0) != 0;
  options.pages_per_second = EnvUint64("CUBETREE_SCRUB_RATE", 0);
  options.interval_ms = EnvUint64("CUBETREE_SCRUB_INTERVAL_MS", 60000);
  return options;
}

Scrubber::Scrubber(CubetreeForest* forest, ScrubOptions options,
                   RepairFn repair)
    : forest_(forest),
      options_(options),
      repair_(std::move(repair)) {}

Scrubber::~Scrubber() { Stop(); }

std::unique_ptr<Scrubber> Scrubber::CreateFromEnv(CubetreeForest* forest,
                                                  RepairFn repair) {
  ScrubOptions options = ScrubOptions::FromEnv();
  if (!options.enabled) return nullptr;
  return std::make_unique<Scrubber>(forest, options, std::move(repair));
}

bool Scrubber::TryRepair(uint32_t first_view_id) {
  if (!repair_) return false;
  if (repair_paused_.load(std::memory_order_relaxed)) {
    // Degraded (disk-full) mode: rebuilding a tree writes a fresh
    // generation, which would only dig the hole deeper. The quarantine
    // already keeps wrong answers off the wire; the rebuild waits for
    // space to return.
    CT_LOG(Warn) << "scrub: repair paused (degraded mode), view "
                 << first_view_id << " stays quarantined";
    return false;
  }
  return repair_().ok() && !forest_->IsViewQuarantined(first_view_id);
}

void Scrubber::ScrubFile(const std::string& path, uint32_t first_view_id,
                         ScrubPassStats* stats) {
  const ScrubMetrics& m = ScrubMetrics::Get();
  auto pm = PageManager::Open(path);
  if (!pm.ok()) {
    // The file vanishing or failing to open mid-pass is not corruption from
    // the scrubber's point of view (a refresh may have retired it between
    // the snapshot pin and here is impossible — the pin keeps it alive —
    // but transient I/O errors are real). Log and move on.
    CT_LOG(Warn) << "scrub: cannot open " << path << ": "
                 << pm.status().ToString();
    return;
  }
  std::unique_ptr<PageManager> file = std::move(pm).value();
  if (Status cs = file->LoadChecksums(); !cs.ok()) {
    if (cs.IsNotFound()) {
      // Pre-checksum generation: readable but unverifiable.
      ++stats->files_unverified;
      ++stats->files_scanned;
      return;
    }
    // A present-but-invalid sidecar is itself corruption of the tree's
    // on-disk state: quarantine just like a page mismatch.
    ++stats->corruptions_found;
    m.corruptions_found->Increment();
    CT_LOG(Warn) << "scrub: bad checksum sidecar for " << path << ": "
                 << cs.ToString();
    auto q = forest_->QuarantineForCorruption(first_view_id, path, cs);
    if (!q.ok() || !q.value()) return;
    const bool repaired = TryRepair(first_view_id);
    if (repaired) {
      ++stats->corruptions_repaired;
      m.corruptions_repaired->Increment();
    } else {
      ++stats->corruptions_unrepairable;
      m.corruptions_unrepairable->Increment();
    }
    return;
  }

  ++stats->files_scanned;
  const PageId pages = file->NumPages();
  using Clock = std::chrono::steady_clock;
  Clock::time_point next_read = Clock::now();
  const auto per_page_budget =
      options_.pages_per_second == 0
          ? std::chrono::nanoseconds(0)
          : std::chrono::nanoseconds(1000000000ull / options_.pages_per_second);

  Page page;
  for (PageId id = 0; id < pages; ++id) {
    if (options_.pages_per_second != 0) {
      {
        // Abort the file promptly on Stop() instead of sleeping out the
        // throttle budget.
        MutexLock lock(mu_);
        if (stop_) return;
        cv_.WaitUntil(lock, next_read);
        if (stop_) return;
      }
      next_read += per_page_budget;
    }
    Status read = file->ReadPage(id, &page);
    ++stats->pages_scrubbed;
    m.pages_scrubbed->Increment();
    if (read.ok()) continue;
    if (!read.IsCorruption()) {
      // Transient I/O trouble (after the storage layer's own retries):
      // not a checksum finding; skip the rest of the file.
      CT_LOG(Warn) << "scrub: read error on " << path << ": "
                   << read.ToString();
      return;
    }
    ++stats->corruptions_found;
    m.corruptions_found->Increment();
    CT_LOG(Warn) << "scrub: corruption in " << path << ": " << read.ToString();
    // Quarantine only if this exact file is still the live one — a refresh
    // that replaced it since the snapshot pin already made the corruption
    // moot, and quarantining the fresh tree would be wrong.
    auto q = forest_->QuarantineForCorruption(first_view_id, path, read);
    if (!q.ok()) {
      CT_LOG(Warn) << "scrub: quarantine failed: " << q.status().ToString();
      return;
    }
    if (q.value()) {
      const bool repaired = TryRepair(first_view_id);
      if (repaired) {
        ++stats->corruptions_repaired;
        m.corruptions_repaired->Increment();
      } else {
        ++stats->corruptions_unrepairable;
        m.corruptions_unrepairable->Increment();
      }
    }
    // One finding quarantines the whole tree; scanning the rest of the
    // file adds nothing.
    return;
  }
}

Status Scrubber::ScrubOnce(ScrubPassStats* stats) {
  obs::Span pass_span("scrub.pass");
  ScrubPassStats local;
  if (stats == nullptr) stats = &local;
  *stats = ScrubPassStats();

  // Pin the serving generation: epoch-based reclamation keeps every file
  // below alive for the whole pass, even across concurrent refreshes.
  ForestSnapshot snapshot = forest_->AcquireSnapshot();
  if (!snapshot.valid()) {
    return Status::Unavailable("scrub: forest has no published state");
  }

  for (size_t t = 0; t < snapshot.num_trees(); ++t) {
    Cubetree* tree = snapshot.tree(t);
    if (tree == nullptr || tree->views().empty()) continue;
    const uint32_t view_id = tree->views()[0].id;
    // A tree already quarantined has no live files worth scanning.
    if (snapshot.IsViewQuarantined(view_id)) continue;
    ScrubFile(tree->rtree()->path(), view_id, stats);
    for (size_t d = 0; d < tree->num_deltas(); ++d) {
      ScrubFile(tree->delta(d)->path(), view_id, stats);
    }
    {
      MutexLock lock(mu_);
      if (stop_) break;
    }
  }

  passes_.fetch_add(1, std::memory_order_relaxed);
  ScrubMetrics::Get().passes->Increment();
  return Status::OK();
}

void Scrubber::Run() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_) return;
    }
    ScrubPassStats stats;
    Status s = ScrubOnce(&stats);
    if (!s.ok() && !s.IsUnavailable()) {
      CT_LOG(Warn) << "scrub: pass failed: " << s.ToString();
    }
    if (stats.corruptions_found > 0) {
      CT_LOG(Warn) << "scrub: pass found " << stats.corruptions_found
                   << " corruption(s), repaired " << stats.corruptions_repaired
                   << ", unrepairable " << stats.corruptions_unrepairable;
    }
    MutexLock lock(mu_);
    cv_.WaitFor(lock, std::chrono::milliseconds(options_.interval_ms));
    if (stop_) return;
  }
}

void Scrubber::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
}

void Scrubber::Stop() {
  std::thread joinable;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
    cv_.NotifyAll();
    joinable = std::move(thread_);
    running_ = false;
  }
  if (joinable.joinable()) joinable.join();
}

}  // namespace cubetree
