#ifndef CUBETREE_SORT_SPOOL_H_
#define CUBETREE_SORT_SPOOL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "sort/external_sorter.h"
#include "storage/page_manager.h"

namespace cubetree {

/// Append-only page-backed file of fixed-width records with sequential
/// read-back. Used to stage each computed view's sorted aggregate tuples
/// between the cube builder and the Cubetree packer / conventional loader
/// (the "sorted delta" boxes of the paper's Figures 11 and 15).
class RecordSpool {
 public:
  static Result<std::unique_ptr<RecordSpool>> Create(
      const std::string& path, size_t record_size,
      std::shared_ptr<IoStats> io_stats = nullptr);

  ~RecordSpool();

  RecordSpool(const RecordSpool&) = delete;
  RecordSpool& operator=(const RecordSpool&) = delete;

  /// Appends one record (record_size bytes).
  Status Append(const char* record);

  /// Flushes the current partial page. Must be called before reading.
  Status Seal();

  uint64_t num_records() const { return num_records_; }
  size_t record_size() const { return record_size_; }
  uint64_t FileSizeBytes() const { return file_->FileSizeBytes(); }
  const std::string& path() const { return file_->path(); }

  /// Sequential reader over the sealed spool.
  class Reader : public RecordStream {
   public:
    Status Next(const char** record) override;

   private:
    friend class RecordSpool;
    explicit Reader(RecordSpool* spool) : spool_(spool) {}

    RecordSpool* spool_;
    Page page_;
    PageId next_page_ = 0;
    uint64_t remaining_ = 0;
    size_t in_page_ = 0;
    bool loaded_ = false;
  };

  /// Returns a reader positioned at the first record. The spool must be
  /// sealed and must outlive the reader.
  Result<std::unique_ptr<Reader>> NewReader();

  /// Removes the backing file (spool becomes unusable).
  Status Destroy();

 private:
  RecordSpool(std::unique_ptr<PageManager> file, size_t record_size);

  size_t PerPage() const { return kPageSize / record_size_; }

  std::unique_ptr<PageManager> file_;
  size_t record_size_;
  uint64_t num_records_ = 0;
  Page tail_;
  size_t in_tail_ = 0;
  bool sealed_ = false;
};

}  // namespace cubetree

#endif  // CUBETREE_SORT_SPOOL_H_
