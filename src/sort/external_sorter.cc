#include "sort/external_sorter.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

#include <unistd.h>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sort/loser_tree.h"

namespace cubetree {

namespace {

struct SorterMetrics {
  obs::Counter* runs_spilled;
  obs::Counter* merge_passes;
  obs::Counter* bytes_spilled;

  static const SorterMetrics& Get() {
    static const SorterMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return SorterMetrics{reg.GetCounter("sorter.runs_spilled"),
                           reg.GetCounter("sorter.merge_passes"),
                           reg.GetCounter("sorter.bytes_spilled")};
    }();
    return m;
  }
};

std::string NextRunPath(const std::string& dir) {
  static std::atomic<uint64_t> counter{0};
  return dir + "/ctsort_run_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".tmp";
}

/// Depth-1 double buffering for a loser-tree merge: one background thread
/// round-robins over the runs, keeping each run's next sequential page
/// loaded before the merge asks for it, so merge compute overlaps the
/// transfer of the next page instead of stalling on a synchronous
/// ReadPage. Each PageManager is touched only by the prefetch thread once
/// a ReadAhead owns it. The prefetch thread has no ambient trace: its
/// page reads land in IoStats but are not attributed to any span.
class ReadAhead {
 public:
  struct Run {
    PageManager* file = nullptr;
    uint64_t num_pages = 0;
  };

  explicit ReadAhead(const std::vector<Run>& runs) {
    slots_.reserve(runs.size());
    for (const Run& run : runs) {
      slots_.emplace_back();
      slots_.back().file = run.file;
      slots_.back().num_pages = run.num_pages;
    }
    thread_ = std::thread(&ReadAhead::Loop, this);
  }

  ~ReadAhead() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

  ReadAhead(const ReadAhead&) = delete;
  ReadAhead& operator=(const ReadAhead&) = delete;

  /// Blocks until run `i`'s next sequential page is prefetched, copies it
  /// into *out, and frees the slot for the next page. Returns the read's
  /// status; callers must not ask for pages past num_pages.
  Status NextPage(size_t i, Page* out) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    Slot& slot = slots_[i];
    while (!slot.full) cv_.Wait(lock);
    *out = slot.page;
    Status read = slot.status;
    slot.full = false;
    cv_.NotifyAll();
    return read;
  }

 private:
  struct Slot {
    PageManager* file = nullptr;
    uint64_t num_pages = 0;
    PageId next = 0;  // Next page the prefetcher will load.
    Page page;
    Status status;
    bool full = false;
  };

  void Loop() EXCLUDES(mu_) {
    while (true) {
      PageManager* file = nullptr;
      PageId page_id = 0;
      size_t index = 0;
      {
        MutexLock lock(mu_);
        while (true) {
          if (stop_) return;
          bool found = false;
          for (size_t i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].full && slots_[i].next < slots_[i].num_pages) {
              file = slots_[i].file;
              page_id = slots_[i].next;
              index = i;
              found = true;
              break;
            }
          }
          if (found) break;
          cv_.Wait(lock);  // Everything prefetched or exhausted.
        }
      }
      // Read outside the lock: the consumer only ever touches slots_, so
      // the file itself is this thread's alone.
      Page page;
      Status read = file->ReadPage(page_id, &page);
      {
        MutexLock lock(mu_);
        Slot& slot = slots_[index];
        slot.page = page;
        slot.status = std::move(read);
        slot.full = true;
        ++slot.next;
      }
      cv_.NotifyAll();
    }
  }

  Mutex mu_;
  CondVar cv_;
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// Sequential reader over one spilled run file, optionally fed by a
/// shared ReadAhead prefetcher instead of synchronous ReadPage calls.
class RunReader {
 public:
  RunReader(PageManager* file, size_t record_size, uint64_t num_records,
            ReadAhead* read_ahead = nullptr, size_t slot = 0)
      : file_(file),
        record_size_(record_size),
        remaining_(num_records),
        per_page_(kPageSize / record_size),
        read_ahead_(read_ahead),
        slot_(slot) {}

  /// Sets *record to the next record or nullptr when the run is exhausted.
  Status Next(const char** record) {
    if (remaining_ == 0) {
      *record = nullptr;
      return Status::OK();
    }
    if (in_page_ == per_page_ || next_page_ == 0) {
      if (read_ahead_ != nullptr) {
        CT_RETURN_NOT_OK(read_ahead_->NextPage(slot_, &page_));
      } else {
        CT_RETURN_NOT_OK(file_->ReadPage(next_page_, &page_));
      }
      ++next_page_;
      in_page_ = 0;
    }
    *record = page_.data + in_page_ * record_size_;
    ++in_page_;
    --remaining_;
    return Status::OK();
  }

 private:
  PageManager* file_;
  size_t record_size_;
  uint64_t remaining_;
  size_t per_page_;
  ReadAhead* read_ahead_;
  size_t slot_;
  Page page_;
  PageId next_page_ = 0;
  size_t in_page_ = per_page_;  // Forces a page read on first Next().
};

/// Loser-tree merge of several RunReaders. Optionally owns the ReadAhead
/// its readers pull from; destroyed with the stream (stopping the
/// prefetch thread before the underlying run files go away).
class MergeRecordStream : public RecordStream {
 public:
  MergeRecordStream(std::vector<RunReader> readers, RecordComparator less,
                    std::unique_ptr<ReadAhead> read_ahead = nullptr)
      : read_ahead_(std::move(read_ahead)),
        readers_(std::move(readers)),
        less_(std::move(less)) {}

  Status Next(const char** record) override {
    if (!primed_) {
      current_.resize(readers_.size());
      for (size_t i = 0; i < readers_.size(); ++i) {
        CT_RETURN_NOT_OK(readers_[i].Next(&current_[i]));
      }
      tree_ = std::make_unique<LoserTree>(
          readers_.size(), [this](size_t a, size_t b) {
            if (current_[a] == nullptr) return false;
            if (current_[b] == nullptr) return true;
            return less_(current_[a], current_[b]);
          });
      primed_ = true;
    } else {
      const size_t w = tree_->Winner();
      CT_RETURN_NOT_OK(readers_[w].Next(&current_[w]));
      tree_->Replay();
    }
    const size_t w = tree_->Winner();
    *record = current_[w];
    return Status::OK();
  }

 private:
  std::unique_ptr<ReadAhead> read_ahead_;  // Nullable; outlives readers_.
  std::vector<RunReader> readers_;
  RecordComparator less_;
  std::vector<const char*> current_;
  std::unique_ptr<LoserTree> tree_;
  bool primed_ = false;
};

/// Pages a run of `records` fixed-width records occupies on disk.
uint64_t PagesForRecords(uint64_t records, size_t record_size) {
  const uint64_t per_page = kPageSize / record_size;
  return (records + per_page - 1) / per_page;
}

/// Sorts the fixed-width records held in *buffer in place.
void SortRecords(std::vector<char>* buffer, size_t record_size,
                 const RecordComparator& less) {
  const size_t rs = record_size;
  const size_t n = buffer->size() / rs;
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const char* base = buffer->data();
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return less(base + static_cast<size_t>(a) * rs,
                base + static_cast<size_t>(b) * rs);
  });
  std::vector<char> sorted(buffer->size());
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(sorted.data() + i * rs,
                base + static_cast<size_t>(order[i]) * rs, rs);
  }
  buffer->swap(sorted);
}

}  // namespace

ExternalSorter::ExternalSorter(Options options, RecordComparator less)
    : options_(std::move(options)), less_(std::move(less)) {
  // Spill and merge lay records out per page as kPageSize / record_size;
  // a zero or page-exceeding record size would make that quotient 0 and
  // turn SpillRun's write loop into an infinite loop (and RunReader into
  // an out-of-page overrun). Latch the error here — constructors cannot
  // fail — and surface it from the first Add/Finish.
  if (options_.record_size == 0 || options_.record_size > kPageSize) {
    budget_status_ = Status::InvalidArgument(
        "ExternalSorter: record_size " +
        std::to_string(options_.record_size) + " must be in [1, " +
        std::to_string(kPageSize) + "]");
    return;
  }
  // Floor the budget at 64 records: every spilled run keeps a file (and a
  // descriptor) open until Finish, so degenerate budgets must not turn
  // each record into its own run.
  options_.memory_budget_bytes =
      std::max(options_.memory_budget_bytes, options_.record_size * 64);
  if (options_.process_budget != nullptr) {
    auto granted = options_.process_budget->ReserveUpTo(
        options_.record_size * 64, options_.memory_budget_bytes,
        "external sorter");
    if (granted.ok()) {
      reservation_ = MemoryReservation(options_.process_budget,
                                       granted.value());
      // A smaller grant lowers the spill threshold: the sort still
      // completes, it just trades memory for extra run files.
      options_.memory_budget_bytes = static_cast<size_t>(granted.value());
    } else {
      budget_status_ = granted.status();
    }
  }
  buffer_.reserve(options_.memory_budget_bytes);
}

ExternalSorter::~ExternalSorter() {
  // Join outstanding background spills; a destructor cannot propagate, so
  // latched failures (and their runs) are simply dropped with the files.
  for (std::thread& worker : spill_workers_) worker.join();
  spill_workers_.clear();
  trace_handoff_.SpliceQueued();
  MutexLock lock(spill_mu_);
  if (spill_throw_ != nullptr) {
    CT_LOG(Warn) << "external sorter: background spill exception swallowed "
                    "by destructor";
  }
  runs_.clear();
  for (const std::string& path : run_paths_) {
    // Cannot propagate from a destructor, but a leaked run file should not
    // vanish silently: temp-dir growth is an operator-visible problem.
    Status removed = RemoveFileIfExists(path);
    if (!removed.ok()) {
      CT_LOG(Warn) << "external sorter: leaked run file: "
                   << removed.ToString();
    }
  }
}

Status ExternalSorter::Add(const char* record) {
  if (finished_) return Status::Internal("ExternalSorter: Add after Finish");
  CT_RETURN_NOT_OK(budget_status_);
  if (buffer_.size() + options_.record_size > options_.memory_budget_bytes) {
    CT_RETURN_NOT_OK(DispatchSpill());
  }
  buffer_.insert(buffer_.end(), record, record + options_.record_size);
  ++num_records_;
  return Status::OK();
}

void ExternalSorter::SortBuffer() {
  SortRecords(&buffer_, options_.record_size, less_);
}

Status ExternalSorter::DispatchSpill() {
  {
    // Surface a background failure before accepting more work; the error
    // stays latched so every later Add fails the same way.
    MutexLock lock(spill_mu_);
    CT_RETURN_NOT_OK(spill_error_);
  }
  const bool can_async =
      options_.spill_threads > 1 && options_.process_budget != nullptr;
  if (can_async) {
    // The detached buffer keeps its memory until the worker finishes, so
    // the replacement needs its own all-or-nothing reservation. Denial is
    // the degrade path, not an error: spill synchronously, reusing the
    // buffer we already own.
    Status extra = options_.process_budget->TryReserve(
        options_.memory_budget_bytes, "external sorter spill buffer");
    if (extra.ok()) {
      MemoryReservation replacement(options_.process_budget,
                                    options_.memory_budget_bytes);
      std::vector<char> full;
      full.reserve(options_.memory_budget_bytes);
      buffer_.swap(full);
      if (spill_workers_.size() >= options_.spill_threads) {
        // Backpressure: spills run roughly in FIFO order, so joining the
        // oldest worker frees a slot soonest.
        spill_workers_.front().join();
        spill_workers_.erase(spill_workers_.begin());
        MutexLock lock(spill_mu_);
        CT_RETURN_NOT_OK(spill_error_);
      }
      spill_workers_.emplace_back(&ExternalSorter::SpillWorkerBody, this,
                                  std::move(full), std::move(replacement));
    } else {
      CT_RETURN_NOT_OK(SpillRun());
    }
  } else {
    CT_RETURN_NOT_OK(SpillRun());
  }
  // Keep the number of simultaneously open run files bounded even while
  // records are still arriving. Merging mutates the run vectors, so the
  // background workers must be drained first.
  size_t num_runs_now = 0;
  {
    MutexLock lock(spill_mu_);
    num_runs_now = runs_.size();
  }
  if (num_runs_now >= 2 * std::max<size_t>(2, options_.max_merge_fanin)) {
    CT_RETURN_NOT_OK(WaitForSpills());
    CT_RETURN_NOT_OK(ReduceRuns());
  }
  return Status::OK();
}

Status ExternalSorter::SpillRun() {
  CT_FAULT("sort.spill");
  SortBuffer();
  CT_RETURN_NOT_OK(WriteRun(buffer_));
  buffer_.clear();
  return Status::OK();
}

void ExternalSorter::SpillWorkerBody(std::vector<char> buf,
                                     MemoryReservation res) {
  // `res` pins the detached buffer's budget share until this worker
  // returns. Spans land in a local trace spliced at join (Defer, not
  // Adopt: the adding thread keeps tracing while we run).
  obs::TraceHandoff::Defer defer(trace_handoff_);
  Status spilled;
  try {
    spilled = [&]() -> Status {
      CT_FAULT("sort.spill");
      SortRecords(&buf, options_.record_size, less_);
      return WriteRun(buf);
    }();
  } catch (...) {
    MutexLock lock(spill_mu_);
    if (spill_throw_ == nullptr) spill_throw_ = std::current_exception();
    return;
  }
  if (!spilled.ok()) {
    MutexLock lock(spill_mu_);
    if (spill_error_.ok()) spill_error_ = std::move(spilled);
  }
}

Status ExternalSorter::WriteRun(const std::vector<char>& buf) {
  const size_t rs = options_.record_size;
  const size_t per_page = kPageSize / rs;
  const size_t n = buf.size() / rs;
  obs::Span spill_span("sort.spill");
  spill_span.Annotate("records", static_cast<uint64_t>(n));
  spill_span.Annotate("bytes", static_cast<uint64_t>(n * rs));
  std::string path = NextRunPath(options_.temp_dir);
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Create(path, options_.io_stats));
  Page page;
  size_t written = 0;
  while (written < n) {
    page.Zero();
    const size_t batch = std::min(per_page, n - written);
    std::memcpy(page.data, buf.data() + written * rs, batch * rs);
    Status appended = file->AppendPage(page).status();
    if (!appended.ok()) {
      // The run is registered in run_paths_ only after a complete write,
      // so nothing else would ever delete this partial file — not even
      // the destructor's leak log. Remove it now, under the typed error
      // (StorageFull on a full disk) that the caller sees.
      file.reset();
      (void)RemoveFileIfExists(path);  // Best effort beneath the error.
      return appended;
    }
    written += batch;
  }
  {
    MutexLock lock(spill_mu_);
    run_record_counts_.push_back(n);
    runs_.push_back(std::move(file));
    run_paths_.push_back(std::move(path));
  }
  SorterMetrics::Get().runs_spilled->Increment();
  SorterMetrics::Get().bytes_spilled->Increment(n * rs);
  return Status::OK();
}

Status ExternalSorter::WaitForSpills() {
  for (std::thread& worker : spill_workers_) worker.join();
  spill_workers_.clear();
  // The workers are gone, so the parent trace is quiescent again: graft
  // their queued sort.spill spans under the span that was ambient when
  // this sorter was constructed.
  trace_handoff_.SpliceQueued();
  MutexLock lock(spill_mu_);
  if (spill_throw_ != nullptr) {
    std::exception_ptr thrown = spill_throw_;
    spill_throw_ = nullptr;
    std::rethrow_exception(thrown);
  }
  return spill_error_;  // A copy: the latch stays set for later calls.
}

Status ExternalSorter::MergeRunRange(size_t begin, size_t end) {
  CT_FAULT("sort.merge");
  obs::Span merge_span("sort.merge");
  merge_span.Annotate("runs", static_cast<uint64_t>(end - begin));
  std::vector<RunReader> readers;
  std::unique_ptr<ReadAhead> read_ahead;
  uint64_t total = 0;
  {
    MutexLock lock(spill_mu_);
    if (options_.merge_read_ahead) {
      std::vector<ReadAhead::Run> prefetch;
      for (size_t i = begin; i < end; ++i) {
        prefetch.push_back({runs_[i].get(),
                            PagesForRecords(run_record_counts_[i],
                                            options_.record_size)});
      }
      read_ahead = std::make_unique<ReadAhead>(prefetch);
    }
    for (size_t i = begin; i < end; ++i) {
      readers.emplace_back(runs_[i].get(), options_.record_size,
                           run_record_counts_[i], read_ahead.get(),
                           i - begin);
      total += run_record_counts_[i];
    }
  }
  MergeRecordStream merged(std::move(readers), less_,
                           std::move(read_ahead));

  const size_t rs = options_.record_size;
  const size_t per_page = kPageSize / rs;
  std::string path = NextRunPath(options_.temp_dir);
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Create(path, options_.io_stats));
  const auto write_merged = [&]() -> Status {
    Page page;
    page.Zero();
    size_t in_page = 0;
    const char* record = nullptr;
    while (true) {
      CT_RETURN_NOT_OK(merged.Next(&record));
      if (record == nullptr) break;
      std::memcpy(page.data + in_page * rs, record, rs);
      if (++in_page == per_page) {
        CT_RETURN_NOT_OK(file->AppendPage(page).status());
        page.Zero();
        in_page = 0;
      }
    }
    if (in_page > 0) {
      CT_RETURN_NOT_OK(file->AppendPage(page).status());
    }
    return Status::OK();
  };
  Status wrote = write_merged();
  if (!wrote.ok()) {
    // Same discipline as SpillRun: the partial output is invisible to the
    // destructor until it lands in run_paths_, so delete it eagerly. The
    // input runs stay intact for a retry.
    file.reset();
    (void)RemoveFileIfExists(path);  // Best effort beneath the error.
    return wrote;
  }

  // Retire the merged inputs; append the combined run.
  MutexLock lock(spill_mu_);
  for (size_t i = begin; i < end; ++i) {
    runs_[i].reset();
    CT_RETURN_NOT_OK(RemoveFileIfExists(run_paths_[i]));
  }
  runs_.erase(runs_.begin() + begin, runs_.begin() + end);
  run_paths_.erase(run_paths_.begin() + begin, run_paths_.begin() + end);
  run_record_counts_.erase(run_record_counts_.begin() + begin,
                           run_record_counts_.begin() + end);
  runs_.push_back(std::move(file));
  run_paths_.push_back(std::move(path));
  run_record_counts_.push_back(total);
  SorterMetrics::Get().merge_passes->Increment();
  return Status::OK();
}

Status ExternalSorter::ReduceRuns() {
  const size_t fanin = std::max<size_t>(2, options_.max_merge_fanin);
  while (true) {
    size_t num_runs_now = 0;
    {
      MutexLock lock(spill_mu_);
      num_runs_now = runs_.size();
    }
    if (num_runs_now <= fanin) break;
    const size_t batch = std::min(fanin, num_runs_now - fanin + 1);
    CT_RETURN_NOT_OK(MergeRunRange(0, batch));
  }
  return Status::OK();
}

Result<std::unique_ptr<RecordStream>> ExternalSorter::Finish() {
  CT_FAULT("sort.finish");
  if (finished_) return Status::Internal("ExternalSorter: double Finish");
  CT_RETURN_NOT_OK(budget_status_);
  finished_ = true;
  CT_RETURN_NOT_OK(WaitForSpills());
  size_t num_runs_now = 0;
  {
    MutexLock lock(spill_mu_);
    num_runs_now = runs_.size();
  }
  if (num_runs_now == 0) {
    SortBuffer();
    return std::unique_ptr<RecordStream>(new MemoryRecordStream(
        std::move(buffer_), options_.record_size));
  }
  if (!buffer_.empty()) {
    CT_RETURN_NOT_OK(SpillRun());
  }
  CT_RETURN_NOT_OK(ReduceRuns());
  std::vector<RunReader> readers;
  std::unique_ptr<ReadAhead> read_ahead;
  MutexLock lock(spill_mu_);
  readers.reserve(runs_.size());
  if (options_.merge_read_ahead && runs_.size() > 1) {
    std::vector<ReadAhead::Run> prefetch;
    for (size_t i = 0; i < runs_.size(); ++i) {
      prefetch.push_back({runs_[i].get(),
                          PagesForRecords(run_record_counts_[i],
                                          options_.record_size)});
    }
    read_ahead = std::make_unique<ReadAhead>(prefetch);
  }
  for (size_t i = 0; i < runs_.size(); ++i) {
    readers.emplace_back(runs_[i].get(), options_.record_size,
                         run_record_counts_[i], read_ahead.get(), i);
  }
  return std::unique_ptr<RecordStream>(new MergeRecordStream(
      std::move(readers), less_, std::move(read_ahead)));
}

}  // namespace cubetree
