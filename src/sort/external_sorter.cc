#include "sort/external_sorter.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

#include <unistd.h>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sort/loser_tree.h"

namespace cubetree {

namespace {

struct SorterMetrics {
  obs::Counter* runs_spilled;
  obs::Counter* merge_passes;
  obs::Counter* bytes_spilled;

  static const SorterMetrics& Get() {
    static const SorterMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return SorterMetrics{reg.GetCounter("sorter.runs_spilled"),
                           reg.GetCounter("sorter.merge_passes"),
                           reg.GetCounter("sorter.bytes_spilled")};
    }();
    return m;
  }
};

std::string NextRunPath(const std::string& dir) {
  static std::atomic<uint64_t> counter{0};
  return dir + "/ctsort_run_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".tmp";
}

/// Sequential reader over one spilled run file.
class RunReader {
 public:
  RunReader(PageManager* file, size_t record_size, uint64_t num_records)
      : file_(file),
        record_size_(record_size),
        remaining_(num_records),
        per_page_(kPageSize / record_size) {}

  /// Sets *record to the next record or nullptr when the run is exhausted.
  Status Next(const char** record) {
    if (remaining_ == 0) {
      *record = nullptr;
      return Status::OK();
    }
    if (in_page_ == per_page_ || next_page_ == 0) {
      CT_RETURN_NOT_OK(file_->ReadPage(next_page_, &page_));
      ++next_page_;
      in_page_ = 0;
    }
    *record = page_.data + in_page_ * record_size_;
    ++in_page_;
    --remaining_;
    return Status::OK();
  }

 private:
  PageManager* file_;
  size_t record_size_;
  uint64_t remaining_;
  size_t per_page_;
  Page page_;
  PageId next_page_ = 0;
  size_t in_page_ = per_page_;  // Forces a page read on first Next().
};

/// Loser-tree merge of several RunReaders.
class MergeRecordStream : public RecordStream {
 public:
  MergeRecordStream(std::vector<RunReader> readers, RecordComparator less)
      : readers_(std::move(readers)), less_(std::move(less)) {}

  Status Next(const char** record) override {
    if (!primed_) {
      current_.resize(readers_.size());
      for (size_t i = 0; i < readers_.size(); ++i) {
        CT_RETURN_NOT_OK(readers_[i].Next(&current_[i]));
      }
      tree_ = std::make_unique<LoserTree>(
          readers_.size(), [this](size_t a, size_t b) {
            if (current_[a] == nullptr) return false;
            if (current_[b] == nullptr) return true;
            return less_(current_[a], current_[b]);
          });
      primed_ = true;
    } else {
      const size_t w = tree_->Winner();
      CT_RETURN_NOT_OK(readers_[w].Next(&current_[w]));
      tree_->Replay();
    }
    const size_t w = tree_->Winner();
    *record = current_[w];
    return Status::OK();
  }

 private:
  std::vector<RunReader> readers_;
  RecordComparator less_;
  std::vector<const char*> current_;
  std::unique_ptr<LoserTree> tree_;
  bool primed_ = false;
};

}  // namespace

ExternalSorter::ExternalSorter(Options options, RecordComparator less)
    : options_(std::move(options)), less_(std::move(less)) {
  // Spill and merge lay records out per page as kPageSize / record_size;
  // a zero or page-exceeding record size would make that quotient 0 and
  // turn SpillRun's write loop into an infinite loop (and RunReader into
  // an out-of-page overrun). Latch the error here — constructors cannot
  // fail — and surface it from the first Add/Finish.
  if (options_.record_size == 0 || options_.record_size > kPageSize) {
    budget_status_ = Status::InvalidArgument(
        "ExternalSorter: record_size " +
        std::to_string(options_.record_size) + " must be in [1, " +
        std::to_string(kPageSize) + "]");
    return;
  }
  // Floor the budget at 64 records: every spilled run keeps a file (and a
  // descriptor) open until Finish, so degenerate budgets must not turn
  // each record into its own run.
  options_.memory_budget_bytes =
      std::max(options_.memory_budget_bytes, options_.record_size * 64);
  if (options_.process_budget != nullptr) {
    auto granted = options_.process_budget->ReserveUpTo(
        options_.record_size * 64, options_.memory_budget_bytes,
        "external sorter");
    if (granted.ok()) {
      reservation_ = MemoryReservation(options_.process_budget,
                                       granted.value());
      // A smaller grant lowers the spill threshold: the sort still
      // completes, it just trades memory for extra run files.
      options_.memory_budget_bytes = static_cast<size_t>(granted.value());
    } else {
      budget_status_ = granted.status();
    }
  }
  buffer_.reserve(options_.memory_budget_bytes);
}

ExternalSorter::~ExternalSorter() {
  runs_.clear();
  for (const std::string& path : run_paths_) {
    // Cannot propagate from a destructor, but a leaked run file should not
    // vanish silently: temp-dir growth is an operator-visible problem.
    Status removed = RemoveFileIfExists(path);
    if (!removed.ok()) {
      CT_LOG(Warn) << "external sorter: leaked run file: "
                   << removed.ToString();
    }
  }
}

Status ExternalSorter::Add(const char* record) {
  if (finished_) return Status::Internal("ExternalSorter: Add after Finish");
  CT_RETURN_NOT_OK(budget_status_);
  if (buffer_.size() + options_.record_size > options_.memory_budget_bytes) {
    CT_RETURN_NOT_OK(SpillRun());
  }
  buffer_.insert(buffer_.end(), record, record + options_.record_size);
  ++num_records_;
  return Status::OK();
}

void ExternalSorter::SortBuffer() {
  const size_t rs = options_.record_size;
  const size_t n = buffer_.size() / rs;
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const char* base = buffer_.data();
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return less_(base + static_cast<size_t>(a) * rs,
                 base + static_cast<size_t>(b) * rs);
  });
  std::vector<char> sorted(buffer_.size());
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(sorted.data() + i * rs,
                base + static_cast<size_t>(order[i]) * rs, rs);
  }
  buffer_.swap(sorted);
}

Status ExternalSorter::SpillRun() {
  CT_FAULT("sort.spill");
  SortBuffer();
  const size_t rs = options_.record_size;
  const size_t per_page = kPageSize / rs;
  const size_t n = buffer_.size() / rs;
  obs::Span spill_span("sort.spill");
  spill_span.Annotate("records", static_cast<uint64_t>(n));
  spill_span.Annotate("bytes", static_cast<uint64_t>(n * rs));
  std::string path = NextRunPath(options_.temp_dir);
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Create(path, options_.io_stats));
  Page page;
  size_t written = 0;
  while (written < n) {
    page.Zero();
    const size_t batch = std::min(per_page, n - written);
    std::memcpy(page.data, buffer_.data() + written * rs, batch * rs);
    Status appended = file->AppendPage(page).status();
    if (!appended.ok()) {
      // The run is registered in run_paths_ only after a complete write,
      // so nothing else would ever delete this partial file — not even
      // the destructor's leak log. Remove it now, under the typed error
      // (StorageFull on a full disk) that the caller sees.
      file.reset();
      (void)RemoveFileIfExists(path);  // Best effort beneath the error.
      return appended;
    }
    written += batch;
  }
  run_record_counts_.push_back(n);
  runs_.push_back(std::move(file));
  run_paths_.push_back(std::move(path));
  buffer_.clear();
  SorterMetrics::Get().runs_spilled->Increment();
  SorterMetrics::Get().bytes_spilled->Increment(n * rs);
  // Keep the number of simultaneously open run files bounded even while
  // records are still arriving.
  if (runs_.size() >= 2 * std::max<size_t>(2, options_.max_merge_fanin)) {
    CT_RETURN_NOT_OK(ReduceRuns());
  }
  return Status::OK();
}

Status ExternalSorter::MergeRunRange(size_t begin, size_t end) {
  CT_FAULT("sort.merge");
  obs::Span merge_span("sort.merge");
  merge_span.Annotate("runs", static_cast<uint64_t>(end - begin));
  std::vector<RunReader> readers;
  uint64_t total = 0;
  for (size_t i = begin; i < end; ++i) {
    readers.emplace_back(runs_[i].get(), options_.record_size,
                         run_record_counts_[i]);
    total += run_record_counts_[i];
  }
  MergeRecordStream merged(std::move(readers), less_);

  const size_t rs = options_.record_size;
  const size_t per_page = kPageSize / rs;
  std::string path = NextRunPath(options_.temp_dir);
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Create(path, options_.io_stats));
  const auto write_merged = [&]() -> Status {
    Page page;
    page.Zero();
    size_t in_page = 0;
    const char* record = nullptr;
    while (true) {
      CT_RETURN_NOT_OK(merged.Next(&record));
      if (record == nullptr) break;
      std::memcpy(page.data + in_page * rs, record, rs);
      if (++in_page == per_page) {
        CT_RETURN_NOT_OK(file->AppendPage(page).status());
        page.Zero();
        in_page = 0;
      }
    }
    if (in_page > 0) {
      CT_RETURN_NOT_OK(file->AppendPage(page).status());
    }
    return Status::OK();
  };
  Status wrote = write_merged();
  if (!wrote.ok()) {
    // Same discipline as SpillRun: the partial output is invisible to the
    // destructor until it lands in run_paths_, so delete it eagerly. The
    // input runs stay intact for a retry.
    file.reset();
    (void)RemoveFileIfExists(path);  // Best effort beneath the error.
    return wrote;
  }

  // Retire the merged inputs; append the combined run.
  for (size_t i = begin; i < end; ++i) {
    runs_[i].reset();
    CT_RETURN_NOT_OK(RemoveFileIfExists(run_paths_[i]));
  }
  runs_.erase(runs_.begin() + begin, runs_.begin() + end);
  run_paths_.erase(run_paths_.begin() + begin, run_paths_.begin() + end);
  run_record_counts_.erase(run_record_counts_.begin() + begin,
                           run_record_counts_.begin() + end);
  runs_.push_back(std::move(file));
  run_paths_.push_back(std::move(path));
  run_record_counts_.push_back(total);
  SorterMetrics::Get().merge_passes->Increment();
  return Status::OK();
}

Status ExternalSorter::ReduceRuns() {
  const size_t fanin = std::max<size_t>(2, options_.max_merge_fanin);
  while (runs_.size() > fanin) {
    const size_t batch = std::min(fanin, runs_.size() - fanin + 1);
    CT_RETURN_NOT_OK(MergeRunRange(0, batch));
  }
  return Status::OK();
}

Result<std::unique_ptr<RecordStream>> ExternalSorter::Finish() {
  CT_FAULT("sort.finish");
  if (finished_) return Status::Internal("ExternalSorter: double Finish");
  CT_RETURN_NOT_OK(budget_status_);
  finished_ = true;
  if (runs_.empty()) {
    SortBuffer();
    return std::unique_ptr<RecordStream>(new MemoryRecordStream(
        std::move(buffer_), options_.record_size));
  }
  if (!buffer_.empty()) {
    CT_RETURN_NOT_OK(SpillRun());
  }
  CT_RETURN_NOT_OK(ReduceRuns());
  std::vector<RunReader> readers;
  readers.reserve(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    readers.emplace_back(runs_[i].get(), options_.record_size,
                         run_record_counts_[i]);
  }
  return std::unique_ptr<RecordStream>(
      new MergeRecordStream(std::move(readers), less_));
}

}  // namespace cubetree
