#ifndef CUBETREE_SORT_EXTERNAL_SORTER_H_
#define CUBETREE_SORT_EXTERNAL_SORTER_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"
#include "storage/io_stats.h"
#include "storage/page_manager.h"

namespace cubetree {

/// Pull-based stream of fixed-width records in some defined order. This is
/// the common currency between the sorter, the cube builder (sort-based
/// aggregation) and the Cubetree packer / merge-packer.
class RecordStream {
 public:
  virtual ~RecordStream() = default;

  /// Advances to the next record. On success `*record` points at the record
  /// bytes (valid until the next call) or is set to nullptr at end of
  /// stream.
  virtual Status Next(const char** record) = 0;
};

/// A RecordStream over an in-memory buffer of consecutive records.
class MemoryRecordStream : public RecordStream {
 public:
  MemoryRecordStream(std::vector<char> buffer, size_t record_size)
      : buffer_(std::move(buffer)), record_size_(record_size) {}

  Status Next(const char** record) override {
    if (pos_ + record_size_ > buffer_.size()) {
      *record = nullptr;
      return Status::OK();
    }
    *record = buffer_.data() + pos_;
    pos_ += record_size_;
    return Status::OK();
  }

 private:
  std::vector<char> buffer_;
  size_t record_size_;
  size_t pos_ = 0;
};

/// Strict-weak-order comparator over raw record bytes.
using RecordComparator = std::function<bool(const char*, const char*)>;

/// External merge sorter over fixed-width records.
///
/// Records are buffered up to `memory_budget_bytes`; full buffers are sorted
/// and spilled as page-formatted runs in `temp_dir`, and Finish() returns a
/// stream that merges all runs through a loser tree. If everything fits in
/// memory no file is created. Run file I/O flows through PageManager so it
/// shows up (as sequential I/O) in the configuration's IoStats — the paper
/// counts sorting as part of Cubetree load cost.
class ExternalSorter {
 public:
  struct Options {
    size_t record_size = 0;
    size_t memory_budget_bytes = 16 << 20;
    std::string temp_dir = ".";
    /// Shared stats sink for run-file I/O; may be null.
    std::shared_ptr<IoStats> io_stats;
    /// Maximum runs merged at once. When more runs exist, intermediate
    /// merge passes combine them (bounding open file descriptors and
    /// keeping per-run read-ahead viable on a real disk).
    size_t max_merge_fanin = 64;
    /// Optional process-wide budget (shared with the buffer pool). When
    /// set, the run buffer is reserved from it best-effort: under memory
    /// pressure the sorter gets a smaller buffer and spills earlier; when
    /// not even the 64-record floor is available, Add/Finish return the
    /// budget's retriable ResourceExhausted instead of allocating.
    MemoryBudget* process_budget = nullptr;
    /// Concurrent background sort+spill workers for run generation.
    /// 1 (the default) keeps the serial behavior: a full buffer is sorted
    /// and written on the calling thread before Add returns. K > 1 hands
    /// full buffers to up to K background threads — the caller keeps
    /// adding into a replacement buffer while earlier buffers sort and
    /// write concurrently. Each in-flight buffer needs its own
    /// reservation: the replacement is taken all-or-nothing from
    /// `process_budget`, and a denial degrades that spill to the
    /// synchronous path (earlier blocking, never a failure, never a
    /// deadlock). Requires process_budget; without one the sorter has no
    /// arbiter for the extra buffers and stays synchronous.
    unsigned spill_threads = 1;
    /// Double-buffered read-ahead during merges: one prefetch thread per
    /// merge keeps every run's next sequential page loaded before the
    /// loser tree asks for it, overlapping merge compute with transfer.
    /// The prefetch thread's page reads land in io_stats but carry no
    /// ambient trace, so they are not attributed to any span.
    bool merge_read_ahead = false;
  };

  ExternalSorter(Options options, RecordComparator less);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Copies one record (options.record_size bytes) into the sorter.
  Status Add(const char* record);

  /// Number of records added so far.
  uint64_t num_records() const { return num_records_; }

  /// Number of runs spilled to disk so far (0 = in-memory sort).
  size_t num_runs() const EXCLUDES(spill_mu_) {
    MutexLock lock(spill_mu_);
    return runs_.size();
  }

  /// Sorts everything and returns the fully ordered stream. The sorter (and
  /// its temp files) must outlive the stream. Call at most once.
  Result<std::unique_ptr<RecordStream>> Finish();

 private:
  /// Full-buffer handler for Add: hands the buffer to a background worker
  /// when spill_threads and the budget allow, else spills synchronously.
  Status DispatchSpill() EXCLUDES(spill_mu_);
  /// Synchronous spill of buffer_ on the calling thread.
  Status SpillRun() EXCLUDES(spill_mu_);
  /// Background worker: sorts and writes one detached buffer, latching
  /// any failure in spill_error_ / spill_throw_ for the joining thread.
  void SpillWorkerBody(std::vector<char> buf, MemoryReservation res);
  /// Writes the sorted records in `buf` as a new run file and registers it
  /// under spill_mu_. Shared by the synchronous and background paths.
  Status WriteRun(const std::vector<char>& buf) EXCLUDES(spill_mu_);
  /// Joins every outstanding background spill, splices their trace spans,
  /// and surfaces the first latched failure (rethrowing a worker's
  /// exception on this thread). Leaves errors latched for later calls.
  Status WaitForSpills() EXCLUDES(spill_mu_);
  void SortBuffer();
  /// Merges runs [begin, end) into one new run appended to runs_. Callers
  /// must have joined all background spills (WaitForSpills) first.
  Status MergeRunRange(size_t begin, size_t end) EXCLUDES(spill_mu_);
  /// Reduces runs_ to at most max_merge_fanin via intermediate passes.
  Status ReduceRuns() EXCLUDES(spill_mu_);

  Options options_;
  RecordComparator less_;
  /// Reservation against options_.process_budget (empty when unbudgeted).
  MemoryReservation reservation_;
  /// Non-OK when the budget denied even the minimum buffer; surfaced on
  /// the first Add/Finish (constructors cannot fail).
  Status budget_status_;
  std::vector<char> buffer_;
  uint64_t num_records_ = 0;
  /// Captured at construction so background spill workers can record
  /// their sort.spill spans into the caller's trace (spliced at join).
  obs::TraceHandoff trace_handoff_;
  /// Serializes run registration between the adding thread and background
  /// spill workers; merges and Finish read the run vectors after joining
  /// all workers, so their holds are for the analyzer, not contention.
  mutable Mutex spill_mu_;
  /// Background spill threads not yet joined (bounded by spill_threads).
  std::vector<std::thread> spill_workers_;
  Status spill_error_ GUARDED_BY(spill_mu_);
  std::exception_ptr spill_throw_ GUARDED_BY(spill_mu_);
  std::vector<std::unique_ptr<PageManager>> runs_ GUARDED_BY(spill_mu_);
  std::vector<std::string> run_paths_ GUARDED_BY(spill_mu_);
  std::vector<uint64_t> run_record_counts_ GUARDED_BY(spill_mu_);
  bool finished_ = false;
};

}  // namespace cubetree

#endif  // CUBETREE_SORT_EXTERNAL_SORTER_H_
