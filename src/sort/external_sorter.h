#ifndef CUBETREE_SORT_EXTERNAL_SORTER_H_
#define CUBETREE_SORT_EXTERNAL_SORTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page_manager.h"

namespace cubetree {

/// Pull-based stream of fixed-width records in some defined order. This is
/// the common currency between the sorter, the cube builder (sort-based
/// aggregation) and the Cubetree packer / merge-packer.
class RecordStream {
 public:
  virtual ~RecordStream() = default;

  /// Advances to the next record. On success `*record` points at the record
  /// bytes (valid until the next call) or is set to nullptr at end of
  /// stream.
  virtual Status Next(const char** record) = 0;
};

/// A RecordStream over an in-memory buffer of consecutive records.
class MemoryRecordStream : public RecordStream {
 public:
  MemoryRecordStream(std::vector<char> buffer, size_t record_size)
      : buffer_(std::move(buffer)), record_size_(record_size) {}

  Status Next(const char** record) override {
    if (pos_ + record_size_ > buffer_.size()) {
      *record = nullptr;
      return Status::OK();
    }
    *record = buffer_.data() + pos_;
    pos_ += record_size_;
    return Status::OK();
  }

 private:
  std::vector<char> buffer_;
  size_t record_size_;
  size_t pos_ = 0;
};

/// Strict-weak-order comparator over raw record bytes.
using RecordComparator = std::function<bool(const char*, const char*)>;

/// External merge sorter over fixed-width records.
///
/// Records are buffered up to `memory_budget_bytes`; full buffers are sorted
/// and spilled as page-formatted runs in `temp_dir`, and Finish() returns a
/// stream that merges all runs through a loser tree. If everything fits in
/// memory no file is created. Run file I/O flows through PageManager so it
/// shows up (as sequential I/O) in the configuration's IoStats — the paper
/// counts sorting as part of Cubetree load cost.
class ExternalSorter {
 public:
  struct Options {
    size_t record_size = 0;
    size_t memory_budget_bytes = 16 << 20;
    std::string temp_dir = ".";
    /// Shared stats sink for run-file I/O; may be null.
    std::shared_ptr<IoStats> io_stats;
    /// Maximum runs merged at once. When more runs exist, intermediate
    /// merge passes combine them (bounding open file descriptors and
    /// keeping per-run read-ahead viable on a real disk).
    size_t max_merge_fanin = 64;
    /// Optional process-wide budget (shared with the buffer pool). When
    /// set, the run buffer is reserved from it best-effort: under memory
    /// pressure the sorter gets a smaller buffer and spills earlier; when
    /// not even the 64-record floor is available, Add/Finish return the
    /// budget's retriable ResourceExhausted instead of allocating.
    MemoryBudget* process_budget = nullptr;
  };

  ExternalSorter(Options options, RecordComparator less);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Copies one record (options.record_size bytes) into the sorter.
  Status Add(const char* record);

  /// Number of records added so far.
  uint64_t num_records() const { return num_records_; }

  /// Number of runs spilled to disk so far (0 = in-memory sort).
  size_t num_runs() const { return runs_.size(); }

  /// Sorts everything and returns the fully ordered stream. The sorter (and
  /// its temp files) must outlive the stream. Call at most once.
  Result<std::unique_ptr<RecordStream>> Finish();

 private:
  Status SpillRun();
  void SortBuffer();
  /// Merges runs [begin, end) into one new run appended to runs_.
  Status MergeRunRange(size_t begin, size_t end);
  /// Reduces runs_ to at most max_merge_fanin via intermediate passes.
  Status ReduceRuns();

  Options options_;
  RecordComparator less_;
  /// Reservation against options_.process_budget (empty when unbudgeted).
  MemoryReservation reservation_;
  /// Non-OK when the budget denied even the minimum buffer; surfaced on
  /// the first Add/Finish (constructors cannot fail).
  Status budget_status_;
  std::vector<char> buffer_;
  uint64_t num_records_ = 0;
  std::vector<std::unique_ptr<PageManager>> runs_;
  std::vector<std::string> run_paths_;
  std::vector<uint64_t> run_record_counts_;
  bool finished_ = false;
};

}  // namespace cubetree

#endif  // CUBETREE_SORT_EXTERNAL_SORTER_H_
