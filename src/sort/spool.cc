#include "sort/spool.h"

#include <cstring>

#include "fault/fault_injector.h"

namespace cubetree {

RecordSpool::RecordSpool(std::unique_ptr<PageManager> file,
                         size_t record_size)
    : file_(std::move(file)), record_size_(record_size) {
  tail_.Zero();
}

RecordSpool::~RecordSpool() = default;

Result<std::unique_ptr<RecordSpool>> RecordSpool::Create(
    const std::string& path, size_t record_size,
    std::shared_ptr<IoStats> io_stats) {
  if (record_size == 0 || record_size > kPageSize) {
    return Status::InvalidArgument("spool: unsupported record size");
  }
  CT_RETURN_NOT_OK(RemoveFileIfExists(path));
  CT_ASSIGN_OR_RETURN(auto file,
                      PageManager::Create(path, std::move(io_stats)));
  return std::unique_ptr<RecordSpool>(
      new RecordSpool(std::move(file), record_size));
}

Status RecordSpool::Append(const char* record) {
  if (sealed_) return Status::Internal("spool: append after Seal");
  std::memcpy(tail_.data + in_tail_ * record_size_, record, record_size_);
  ++in_tail_;
  ++num_records_;
  if (in_tail_ == PerPage()) {
    CT_RETURN_NOT_OK(file_->AppendPage(tail_).status());
    tail_.Zero();
    in_tail_ = 0;
  }
  return Status::OK();
}

Status RecordSpool::Seal() {
  CT_FAULT("spool.seal");
  if (sealed_) return Status::OK();
  if (in_tail_ > 0) {
    CT_RETURN_NOT_OK(file_->AppendPage(tail_).status());
    in_tail_ = 0;
  }
  sealed_ = true;
  return Status::OK();
}

Result<std::unique_ptr<RecordSpool::Reader>> RecordSpool::NewReader() {
  if (!sealed_) return Status::Internal("spool: read before Seal");
  auto reader = std::unique_ptr<Reader>(new Reader(this));
  reader->remaining_ = num_records_;
  return reader;
}

Status RecordSpool::Reader::Next(const char** record) {
  if (remaining_ == 0) {
    *record = nullptr;
    return Status::OK();
  }
  const size_t per_page = spool_->PerPage();
  if (!loaded_ || in_page_ == per_page) {
    CT_RETURN_NOT_OK(spool_->file_->ReadPage(next_page_, &page_));
    ++next_page_;
    in_page_ = 0;
    loaded_ = true;
  }
  *record = page_.data + in_page_ * spool_->record_size_;
  ++in_page_;
  --remaining_;
  return Status::OK();
}

Status RecordSpool::Destroy() {
  std::string path = file_->path();
  file_.reset();
  return RemoveFileIfExists(path);
}

}  // namespace cubetree
