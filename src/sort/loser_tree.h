#ifndef CUBETREE_SORT_LOSER_TREE_H_
#define CUBETREE_SORT_LOSER_TREE_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace cubetree {

/// Tournament (loser) tree for k-way merging. Players are identified by
/// index; the tree tracks which player currently holds the smallest key.
/// After the winner's stream advances (or is exhausted), Replay() restores
/// the invariant in O(log k) comparisons.
///
/// `less(a, b)` compares players a and b by their current records; the tree
/// itself treats exhausted players via the caller's comparator, which must
/// rank an exhausted player after every live player.
class LoserTree {
 public:
  /// `less` is captured by value and must remain valid for the tree's life.
  LoserTree(size_t num_players, std::function<bool(size_t, size_t)> less)
      : k_(num_players), less_(std::move(less)), losers_(k_, kNone) {
    winner_ = k_ > 0 ? Init(1) : kNone;
  }

  /// Index of the player holding the current minimum.
  size_t Winner() const { return winner_; }

  /// Re-runs the winner's path after its record changed.
  void Replay() {
    size_t winner = winner_;
    for (size_t node = (k_ + winner_) / 2; node >= 1; node /= 2) {
      if (Less(losers_[node], winner)) {
        std::swap(losers_[node], winner);
      }
      if (node == 1) break;
    }
    winner_ = winner;
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  bool Less(size_t a, size_t b) const {
    if (a == kNone) return false;
    if (b == kNone) return true;
    return less_(a, b);
  }

  /// Plays the full tournament for the subtree rooted at `node`, storing the
  /// loser of each match; returns the subtree winner. Nodes are numbered
  /// heap-style: internal nodes 1..k-1, leaf for player p at k+p.
  size_t Init(size_t node) {
    if (node >= k_) return node - k_;
    size_t w1 = Init(2 * node);
    size_t w2 = Init(2 * node + 1);
    if (Less(w2, w1)) std::swap(w1, w2);
    losers_[node] = w2;
    return w1;
  }

  size_t k_;
  std::function<bool(size_t, size_t)> less_;
  std::vector<size_t> losers_;  // Index 0 unused.
  size_t winner_ = kNone;
};

}  // namespace cubetree

#endif  // CUBETREE_SORT_LOSER_TREE_H_
