#include "olap/query_model.h"

#include <algorithm>

namespace cubetree {

std::string SliceQuery::ToString(const CubeSchema& schema) const {
  std::string select = "SELECT ";
  std::string where;
  bool first_group = true;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (bindings[i].has_value()) {
      if (!where.empty()) where += " AND ";
      where += schema.attr_names[attrs[i]] + " = " +
               std::to_string(*bindings[i]);
    } else if (i < ranges.size() && ranges[i].has_value()) {
      if (!where.empty()) where += " AND ";
      where += schema.attr_names[attrs[i]] + " BETWEEN " +
               std::to_string(ranges[i]->first) + " AND " +
               std::to_string(ranges[i]->second);
    }
    if (IsGrouped(i)) {
      if (!first_group) select += ", ";
      select += schema.attr_names[attrs[i]];
      first_group = false;
    }
  }
  std::string out = select;
  if (!first_group) out += ", ";
  out += "SUM(" + schema.measure_name + ") FROM F";
  if (!where.empty()) out += " WHERE " + where;
  if (!first_group) {
    out += " GROUP BY ";
    bool first = true;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (IsGrouped(i)) {
        if (!first) out += ", ";
        out += schema.attr_names[attrs[i]];
        first = false;
      }
    }
  }
  return out;
}

void QueryResult::SortRows() {
  std::sort(rows.begin(), rows.end(),
            [](const ResultRow& a, const ResultRow& b) {
              return a.group < b.group;
            });
}

bool QueryResult::SameRowsAs(const QueryResult& other) const {
  if (rows.size() != other.rows.size()) return false;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].group != other.rows[i].group ||
        !(rows[i].agg == other.rows[i].agg)) {
      return false;
    }
  }
  return true;
}

SliceQuery SliceQueryGenerator::ForNode(const std::vector<uint32_t>& attrs,
                                        bool exclude_unbound) {
  SliceQuery query;
  query.attrs = attrs;
  for (uint32_t a : attrs) query.node_mask |= (1u << a);
  query.bindings.assign(attrs.size(), std::nullopt);
  if (attrs.empty()) return query;

  const uint64_t num_types = 1ull << attrs.size();
  uint64_t type;
  do {
    type = rng_.Uniform(num_types);
  } while (exclude_unbound && type == 0);
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (type & (1ull << i)) {
      const uint32_t domain = schema_.attr_domains[attrs[i]];
      query.bindings[i] =
          static_cast<Coord>(rng_.UniformRange(1, std::max(1u, domain)));
    }
  }
  return query;
}

SliceQuery SliceQueryGenerator::ForNodeRange(
    const std::vector<uint32_t>& attrs, double range_fraction,
    bool exclude_unbound) {
  SliceQuery query;
  query.attrs = attrs;
  for (uint32_t a : attrs) query.node_mask |= (1u << a);
  query.bindings.assign(attrs.size(), std::nullopt);
  query.ranges.assign(attrs.size(), std::nullopt);
  if (attrs.empty()) return query;

  const uint64_t num_types = 1ull << attrs.size();
  uint64_t type;
  do {
    type = rng_.Uniform(num_types);
  } while (exclude_unbound && type == 0);
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (!(type & (1ull << i))) continue;
    const uint32_t domain = std::max(1u, schema_.attr_domains[attrs[i]]);
    const uint32_t span = std::max<uint32_t>(
        1, static_cast<uint32_t>(domain * range_fraction));
    const Coord lo =
        static_cast<Coord>(rng_.UniformRange(1, std::max(1u, domain - span + 1)));
    query.ranges[i] = std::make_pair(lo, static_cast<Coord>(lo + span - 1));
  }
  return query;
}

SliceQuery SliceQueryGenerator::UniformOverLattice(const CubeLattice& lattice,
                                                   bool exclude_unbound,
                                                   bool skip_none_node) {
  // Pick a (node, type) pair uniformly by weighting nodes by their number
  // of admissible types.
  std::vector<uint64_t> weights(lattice.num_nodes(), 0);
  uint64_t total = 0;
  for (size_t i = 0; i < lattice.num_nodes(); ++i) {
    const size_t k = lattice.node(i).attrs.size();
    if (skip_none_node && k == 0) continue;
    uint64_t types = 1ull << k;
    if (exclude_unbound && types > 1) types -= 1;
    weights[i] = types;
    total += types;
  }
  uint64_t draw = rng_.Uniform(std::max<uint64_t>(total, 1));
  size_t chosen = 0;
  for (size_t i = 0; i < lattice.num_nodes(); ++i) {
    if (draw < weights[i]) {
      chosen = i;
      break;
    }
    draw -= weights[i];
  }
  return ForNode(lattice.node(chosen).attrs, exclude_unbound);
}

}  // namespace cubetree
