#include "olap/lattice.h"

#include <cmath>

namespace cubetree {

CubeLattice::CubeLattice(CubeSchema schema) : schema_(std::move(schema)) {
  const size_t n = schema_.num_attrs();
  const uint32_t num_masks = 1u << n;
  top_mask_ = num_masks - 1;
  nodes_.reserve(num_masks);
  for (uint32_t mask = 0; mask < num_masks; ++mask) {
    LatticeNode node;
    node.mask = mask;
    for (uint32_t a = 0; a < n; ++a) {
      if (mask & (1u << a)) node.attrs.push_back(a);
    }
    by_mask_[mask] = nodes_.size();
    nodes_.push_back(std::move(node));
  }
}

Result<const LatticeNode*> CubeLattice::NodeForMask(uint32_t mask) const {
  auto it = by_mask_.find(mask);
  if (it == by_mask_.end()) {
    return Status::NotFound("lattice: no node for mask " +
                            std::to_string(mask));
  }
  return &nodes_[it->second];
}

void CubeLattice::EstimateRowCounts(uint64_t fact_rows) {
  for (LatticeNode& node : nodes_) {
    double domain_product = 1.0;
    for (uint32_t a : node.attrs) {
      domain_product *= static_cast<double>(schema_.attr_domains[a]);
    }
    // Cardenas: expected distinct groups among N draws from D cells.
    const double n = static_cast<double>(fact_rows);
    double expected;
    if (domain_product > n * 64) {
      // Deep in the sparse regime the formula is numerically ~N.
      expected = n;
    } else {
      expected =
          domain_product * (1.0 - std::exp(-n / domain_product));
    }
    node.row_count =
        static_cast<uint64_t>(std::min(expected, n) + 0.5);
    if (node.attrs.empty()) node.row_count = 1;
  }
}

Status CubeLattice::SetRowCount(uint32_t mask, uint64_t rows) {
  auto it = by_mask_.find(mask);
  if (it == by_mask_.end()) {
    return Status::NotFound("lattice: no node for mask");
  }
  nodes_[it->second].row_count = rows;
  return Status::OK();
}

std::vector<uint32_t> CubeLattice::ParentMasks(uint32_t mask) const {
  std::vector<uint32_t> parents;
  for (uint32_t a = 0; a < schema_.num_attrs(); ++a) {
    const uint32_t bit = 1u << a;
    if (!(mask & bit)) parents.push_back(mask | bit);
  }
  return parents;
}

uint64_t CubeLattice::NumSliceQueryTypes() const {
  uint64_t total = 0;
  for (const LatticeNode& node : nodes_) {
    total += 1ull << node.attrs.size();
  }
  return total;
}

}  // namespace cubetree
