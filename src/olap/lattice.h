#ifndef CUBETREE_OLAP_LATTICE_H_
#define CUBETREE_OLAP_LATTICE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cubetree/view_def.h"

namespace cubetree {

/// One node of the Data Cube lattice: a grouping-attribute set, with its
/// (estimated or measured) number of group tuples.
struct LatticeNode {
  uint32_t mask = 0;
  /// Attribute indices in ascending order (canonical order of the node).
  std::vector<uint32_t> attrs;
  uint64_t row_count = 0;
};

/// The Data Cube lattice over the attributes of a CubeSchema (the paper's
/// Figure 9): one node per attribute subset, with the derives-from relation
/// given by set containment. Used by view selection and by the cube builder
/// to find the smallest parent of each view.
class CubeLattice {
 public:
  /// The schema is copied; the lattice does not hold references into the
  /// caller's object.
  explicit CubeLattice(CubeSchema schema);

  const CubeSchema& schema() const { return schema_; }
  size_t num_nodes() const { return nodes_.size(); }
  const LatticeNode& node(size_t i) const { return nodes_[i]; }
  Result<const LatticeNode*> NodeForMask(uint32_t mask) const;

  uint32_t top_mask() const { return top_mask_; }

  /// Fills every node's row_count with the Cardenas estimate of the number
  /// of distinct groups among `fact_rows` facts: D * (1 - (1 - 1/D)^N)
  /// where D is the product of the node's attribute domains.
  void EstimateRowCounts(uint64_t fact_rows);

  /// Overrides one node's row count with a measured value.
  Status SetRowCount(uint32_t mask, uint64_t rows);

  /// Masks of the direct parents (supersets with exactly one more
  /// attribute) — the dependency graph of the paper's Figure 10.
  std::vector<uint32_t> ParentMasks(uint32_t mask) const;

  /// Total number of slice-query types over all nodes: sum of 2^|g|
  /// (27 for the paper's three-attribute lattice).
  uint64_t NumSliceQueryTypes() const;

 private:
  CubeSchema schema_;
  std::vector<LatticeNode> nodes_;
  std::map<uint32_t, size_t> by_mask_;
  uint32_t top_mask_ = 0;
};

}  // namespace cubetree

#endif  // CUBETREE_OLAP_LATTICE_H_
