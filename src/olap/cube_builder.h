#ifndef CUBETREE_OLAP_CUBE_BUILDER_H_
#define CUBETREE_OLAP_CUBE_BUILDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cubetree/forest.h"
#include "cubetree/view_def.h"
#include "sort/external_sorter.h"
#include "sort/spool.h"

namespace cubetree {

/// Maximum grouping attributes in a fact tuple.
inline constexpr size_t kMaxCubeAttrs = 12;

/// One fact-table row projected onto the grouping-attribute universe, plus
/// the measure. The warehouse layer resolves dimension hierarchies (e.g.
/// part.brand, time.year) into these attribute values before the cube
/// builder sees them.
struct FactTuple {
  Coord attr_values[kMaxCubeAttrs] = {0};
  int64_t measure = 0;
};

/// Pull stream of fact tuples.
class FactSource {
 public:
  virtual ~FactSource() = default;
  /// Sets *tuple to the next fact or nullptr at end.
  virtual Status Next(const FactTuple** tuple) = 0;
};

/// Re-openable provider of the fact stream (the builder may need more than
/// one pass when several views have no materialized ancestor).
class FactProvider {
 public:
  virtual ~FactProvider() = default;
  virtual Result<std::unique_ptr<FactSource>> Open() = 0;
};

/// FactSource over an in-memory vector.
class VectorFactSource : public FactSource {
 public:
  explicit VectorFactSource(const std::vector<FactTuple>* tuples)
      : tuples_(tuples) {}

  Status Next(const FactTuple** tuple) override {
    if (pos_ >= tuples_->size()) {
      *tuple = nullptr;
      return Status::OK();
    }
    *tuple = &(*tuples_)[pos_++];
    return Status::OK();
  }

 private:
  const std::vector<FactTuple>* tuples_;
  size_t pos_ = 0;
};

/// The set of computed views: one sealed, pack-order-sorted spool of
/// aggregate records per view. Implements the forest's ViewDataProvider so
/// it can be fed straight into Cubetree packing, and is equally the input
/// of the conventional engine's view loader.
class ComputedViews : public CubetreeForest::ViewDataProvider {
 public:
  Result<std::unique_ptr<RecordStream>> OpenViewStream(
      const ViewDef& view) override;
  /// Sum of the sealed spool files' sizes — an exact byte count of what
  /// the streams will supply, feeding the refresh disk-space preflight.
  uint64_t EstimatedInputBytes() const override;

  Result<RecordSpool*> spool(uint32_t view_id);
  Result<uint64_t> row_count(uint32_t view_id) const;
  uint64_t total_rows() const;
  const std::vector<ViewDef>& views() const { return views_; }

  /// Removes all spool files.
  Status Destroy();

 private:
  friend class CubeBuilder;

  struct Entry {
    ViewDef view;
    std::unique_ptr<RecordSpool> spool;
  };

  std::vector<ViewDef> views_;
  std::map<uint32_t, Entry> entries_;
};

/// Sort-based computation of a set of aggregate views from the fact table,
/// following the paper's loading pipeline (Figure 11): each view is
/// computed from its smallest already-computed parent (the dependency graph
/// of Figure 10, per [AAD+96]) — or from the fact stream when it has none —
/// by sorting the parent's tuples in the child's pack order and merging
/// adjacent groups. The outputs double as the packing inputs, which is why
/// the paper counts the sort as part of the load, not as overhead.
class CubeBuilder {
 public:
  struct Options {
    std::string temp_dir = ".";
    /// In-memory budget of each external sort.
    size_t sort_budget_bytes = 16u << 20;
    /// Optional process-wide memory budget; when set, each sort reserves
    /// its buffer from it and spills earlier under pressure.
    MemoryBudget* memory_budget = nullptr;
    /// Worker-pool width for each external sort: background run
    /// generation (needs memory_budget as the arbiter for the extra spill
    /// buffers) plus double-buffered merge read-ahead whenever the
    /// resolved width exceeds 1. 0 resolves from CUBETREE_REFRESH_THREADS
    /// / hardware_concurrency, matching the forest's refresh pool.
    unsigned sort_threads = 0;
    /// Shared I/O accounting for sort runs and spools.
    std::shared_ptr<IoStats> io_stats;
    /// Skip the sort when a child's pack order is a projection-compatible
    /// prefix of its parent's — i.e. the child's projection list is a
    /// suffix of the parent's, so the parent's stream is already in the
    /// child's pack order ([AAD+96]-style pipelined aggregation).
    bool pipelined_aggregation = true;
  };

  CubeBuilder(const CubeSchema& schema, Options options)
      : schema_(&schema), options_(std::move(options)) {}

  /// Computes all `views` (any order, replicas included) from the fact
  /// provider. Spool files are named after `tag` in temp_dir.
  Result<std::unique_ptr<ComputedViews>> ComputeAll(
      const std::vector<ViewDef>& views, FactProvider* facts,
      const std::string& tag);

  /// Views of the last ComputeAll that skipped their sort (already in
  /// pack order when projected from their parent).
  uint64_t pipelined_views() const { return pipelined_views_; }
  /// Views of the last ComputeAll that went through a full sort.
  uint64_t sorted_views() const { return sorted_views_; }

 private:
  Status ComputeOne(const ViewDef& view, const ViewDef* parent,
                    ComputedViews* out, FactProvider* facts,
                    const std::string& tag);

  const CubeSchema* schema_;
  Options options_;
  uint64_t pipelined_views_ = 0;
  uint64_t sorted_views_ = 0;
};

/// Streaming wrapper that merges adjacent records with equal group keys
/// (records must arrive sorted). Exposed for reuse by tests and engines.
class AggregatingStream : public RecordStream {
 public:
  AggregatingStream(RecordStream* input, uint8_t arity)
      : input_(input), arity_(arity) {}

  Status Next(const char** record) override;

 private:
  RecordStream* input_;
  uint8_t arity_;
  std::vector<char> current_;
  std::vector<char> pending_;
  bool have_pending_ = false;
  bool done_ = false;
};

}  // namespace cubetree

#endif  // CUBETREE_OLAP_CUBE_BUILDER_H_
