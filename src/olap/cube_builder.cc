#include "olap/cube_builder.h"

#include <algorithm>
#include <cstring>

#include "common/parallel_for.h"

namespace cubetree {

Status AggregatingStream::Next(const char** record) {
  const size_t bytes = ViewRecordBytes(arity_);
  if (current_.empty()) {
    current_.resize(bytes);
    pending_.resize(bytes);
  }
  if (done_ && !have_pending_) {
    *record = nullptr;
    return Status::OK();
  }
  // Load the first record of the next group.
  if (!have_pending_) {
    const char* first = nullptr;
    CT_RETURN_NOT_OK(input_->Next(&first));
    if (first == nullptr) {
      done_ = true;
      *record = nullptr;
      return Status::OK();
    }
    std::memcpy(pending_.data(), first, bytes);
    have_pending_ = true;
  }
  std::memcpy(current_.data(), pending_.data(), bytes);
  have_pending_ = false;
  // Fold all subsequent records with the same group key into current_.
  while (true) {
    const char* next = nullptr;
    CT_RETURN_NOT_OK(input_->Next(&next));
    if (next == nullptr) {
      done_ = true;
      break;
    }
    if (ViewRecordCompare(current_.data(), next, arity_) == 0) {
      Coord coords[kMaxDims];
      AggValue a, b;
      DecodeViewRecord(current_.data(), arity_, coords, &a);
      DecodeViewRecord(next, arity_, coords, &b);
      a.Merge(b);
      EncodeViewRecord(current_.data(), coords, arity_, a);
    } else {
      std::memcpy(pending_.data(), next, bytes);
      have_pending_ = true;
      break;
    }
  }
  *record = current_.data();
  return Status::OK();
}

Result<std::unique_ptr<RecordStream>> ComputedViews::OpenViewStream(
    const ViewDef& view) {
  CT_ASSIGN_OR_RETURN(RecordSpool * s, spool(view.id));
  CT_ASSIGN_OR_RETURN(auto reader, s->NewReader());
  return std::unique_ptr<RecordStream>(std::move(reader));
}

uint64_t ComputedViews::EstimatedInputBytes() const {
  uint64_t total = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.spool != nullptr) total += entry.spool->FileSizeBytes();
  }
  return total;
}

Result<RecordSpool*> ComputedViews::spool(uint32_t view_id) {
  auto it = entries_.find(view_id);
  if (it == entries_.end()) {
    return Status::NotFound("computed views: unknown view id");
  }
  return it->second.spool.get();
}

Result<uint64_t> ComputedViews::row_count(uint32_t view_id) const {
  auto it = entries_.find(view_id);
  if (it == entries_.end()) {
    return Status::NotFound("computed views: unknown view id");
  }
  return it->second.spool->num_records();
}

uint64_t ComputedViews::total_rows() const {
  uint64_t total = 0;
  for (const auto& [id, entry] : entries_) {
    total += entry.spool->num_records();
  }
  return total;
}

Status ComputedViews::Destroy() {
  for (auto& [id, entry] : entries_) {
    if (entry.spool != nullptr) {
      CT_RETURN_NOT_OK(entry.spool->Destroy());
      entry.spool.reset();
    }
  }
  entries_.clear();
  return Status::OK();
}

namespace {

/// True when `child`'s projection list is a suffix of `parent`'s, in
/// order — then the parent's pack order is also the child's, and the
/// child can be aggregated on the fly without a sort.
bool IsSuffixProjection(const ViewDef& child, const ViewDef& parent) {
  const size_t m = child.attrs.size();
  const size_t k = parent.attrs.size();
  if (m > k) return false;
  return std::equal(child.attrs.begin(), child.attrs.end(),
                    parent.attrs.end() - m);
}

}  // namespace

Result<std::unique_ptr<ComputedViews>> CubeBuilder::ComputeAll(
    const std::vector<ViewDef>& views, FactProvider* facts,
    const std::string& tag) {
  auto out = std::make_unique<ComputedViews>();
  out->views_ = views;
  pipelined_views_ = 0;
  sorted_views_ = 0;

  // Compute in descending arity so every view's potential parents (strict
  // or same-set supersets, e.g. a replica's original) are ready first.
  std::vector<const ViewDef*> order;
  for (const ViewDef& v : views) order.push_back(&v);
  std::stable_sort(order.begin(), order.end(),
                   [](const ViewDef* a, const ViewDef* b) {
                     return a->arity() > b->arity();
                   });

  for (const ViewDef* view : order) {
    // Smallest already-computed parent covering this view's attribute
    // set; also track the smallest parent whose pack order the child can
    // reuse without sorting (projection list a suffix of the parent's).
    const ViewDef* parent = nullptr;
    uint64_t parent_rows = 0;
    const ViewDef* suffix_parent = nullptr;
    uint64_t suffix_rows = 0;
    for (const auto& [id, entry] : out->entries_) {
      if (id == view->id) continue;
      if ((entry.view.AttrMask() & view->AttrMask()) != view->AttrMask()) {
        continue;
      }
      const uint64_t rows = entry.spool->num_records();
      if (parent == nullptr || rows < parent_rows) {
        parent = &entry.view;
        parent_rows = rows;
      }
      if (IsSuffixProjection(*view, entry.view) &&
          (suffix_parent == nullptr || rows < suffix_rows)) {
        suffix_parent = &entry.view;
        suffix_rows = rows;
      }
    }
    // Streaming a moderately larger parent beats sorting a smaller one:
    // the pipelined path reads once sequentially, the sorted path reads,
    // spills and merges. 4x is a conservative crossover.
    if (options_.pipelined_aggregation && suffix_parent != nullptr &&
        parent != nullptr && suffix_rows <= 4 * parent_rows) {
      parent = suffix_parent;
    }
    CT_RETURN_NOT_OK(ComputeOne(*view, parent, out.get(), facts, tag));
  }
  return out;
}

namespace {

/// Streams a child view's (unaggregated) records projected from its
/// parent's spool.
class ProjectingStream : public RecordStream {
 public:
  ProjectingStream(std::unique_ptr<RecordSpool::Reader> reader,
                   uint8_t parent_arity, std::vector<size_t> positions,
                   uint8_t child_arity)
      : reader_(std::move(reader)),
        parent_arity_(parent_arity),
        positions_(std::move(positions)),
        child_arity_(child_arity),
        record_(ViewRecordBytes(child_arity)) {}

  Status Next(const char** record) override {
    const char* raw = nullptr;
    CT_RETURN_NOT_OK(reader_->Next(&raw));
    if (raw == nullptr) {
      *record = nullptr;
      return Status::OK();
    }
    Coord parent_coords[kMaxDims];
    Coord coords[kMaxDims] = {0};
    AggValue agg;
    DecodeViewRecord(raw, parent_arity_, parent_coords, &agg);
    for (size_t i = 0; i < positions_.size(); ++i) {
      coords[i] = parent_coords[positions_[i]];
    }
    EncodeViewRecord(record_.data(), coords, child_arity_, agg);
    *record = record_.data();
    return Status::OK();
  }

 private:
  std::unique_ptr<RecordSpool::Reader> reader_;
  uint8_t parent_arity_;
  std::vector<size_t> positions_;
  uint8_t child_arity_;
  std::vector<char> record_;
};

}  // namespace

Status CubeBuilder::ComputeOne(const ViewDef& view, const ViewDef* parent,
                               ComputedViews* out, FactProvider* facts,
                               const std::string& tag) {
  const uint8_t arity = view.arity();
  const size_t record_bytes = ViewRecordBytes(arity);

  // Assemble the child's (unaggregated) input stream.
  std::unique_ptr<RecordStream> input;
  bool already_sorted = false;
  if (parent != nullptr) {
    // Positions of this view's attributes inside the parent's projection.
    std::vector<size_t> positions;
    for (uint32_t attr : view.attrs) {
      size_t pos = parent->attrs.size();
      for (size_t i = 0; i < parent->attrs.size(); ++i) {
        if (parent->attrs[i] == attr) {
          pos = i;
          break;
        }
      }
      if (pos == parent->attrs.size()) {
        return Status::Internal("cube builder: parent does not cover child");
      }
      positions.push_back(pos);
    }
    already_sorted =
        options_.pipelined_aggregation && IsSuffixProjection(view, *parent);
    CT_ASSIGN_OR_RETURN(RecordSpool * parent_spool, out->spool(parent->id));
    CT_ASSIGN_OR_RETURN(auto reader, parent_spool->NewReader());
    input = std::make_unique<ProjectingStream>(
        std::move(reader), parent->arity(), std::move(positions), arity);
  }

  ExternalSorter::Options sort_options;
  sort_options.record_size = record_bytes;
  sort_options.memory_budget_bytes = options_.sort_budget_bytes;
  sort_options.temp_dir = options_.temp_dir;
  sort_options.io_stats = options_.io_stats;
  sort_options.process_budget = options_.memory_budget;
  const unsigned sort_threads = options_.sort_threads != 0
                                    ? options_.sort_threads
                                    : RefreshThreadsFromEnv();
  sort_options.spill_threads = sort_threads;
  sort_options.merge_read_ahead = sort_threads > 1;
  ExternalSorter sorter(sort_options, [arity](const char* a, const char* b) {
    return ViewRecordCompare(a, b, arity) < 0;
  });

  std::unique_ptr<RecordStream> ordered;
  if (already_sorted) {
    // Pipelined path: the parent's order is the child's pack order.
    ordered = std::move(input);
    ++pipelined_views_;
  } else {
    if (input != nullptr) {
      const char* rec = nullptr;
      while (true) {
        CT_RETURN_NOT_OK(input->Next(&rec));
        if (rec == nullptr) break;
        CT_RETURN_NOT_OK(sorter.Add(rec));
      }
    } else {
      // No parent: project straight off the fact stream.
      std::vector<char> record(record_bytes);
      Coord coords[kMaxDims] = {0};
      CT_ASSIGN_OR_RETURN(auto fact_stream, facts->Open());
      const FactTuple* tuple = nullptr;
      while (true) {
        CT_RETURN_NOT_OK(fact_stream->Next(&tuple));
        if (tuple == nullptr) break;
        for (size_t i = 0; i < view.attrs.size(); ++i) {
          coords[i] = tuple->attr_values[view.attrs[i]];
        }
        AggValue agg{tuple->measure, 1};
        EncodeViewRecord(record.data(), coords, arity, agg);
        CT_RETURN_NOT_OK(sorter.Add(record.data()));
      }
    }
    CT_ASSIGN_OR_RETURN(ordered, sorter.Finish());
    ++sorted_views_;
  }

  AggregatingStream aggregated(ordered.get(), arity);
  const std::string path = options_.temp_dir + "/" + tag + "_view" +
                           std::to_string(view.id) + ".spl";
  CT_ASSIGN_OR_RETURN(auto spool, RecordSpool::Create(path, record_bytes,
                                                      options_.io_stats));
  const char* agg_record = nullptr;
  while (true) {
    CT_RETURN_NOT_OK(aggregated.Next(&agg_record));
    if (agg_record == nullptr) break;
    CT_RETURN_NOT_OK(spool->Append(agg_record));
  }
  CT_RETURN_NOT_OK(spool->Seal());
  out->entries_[view.id] = ComputedViews::Entry{view, std::move(spool)};
  return Status::OK();
}

}  // namespace cubetree
