#ifndef CUBETREE_OLAP_QUERY_MODEL_H_
#define CUBETREE_OLAP_QUERY_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cubetree/view_def.h"
#include "olap/lattice.h"

namespace cubetree {

/// A slice query (the TPC-D query model of Section 3.1): equality
/// predicates on a subset of one lattice node's attributes, aggregating the
/// measure grouped by the remaining attributes. For the node {partkey,
/// custkey} the four types are: nothing bound, partkey bound, custkey
/// bound, both bound.
struct SliceQuery {
  /// Lattice node being queried.
  uint32_t node_mask = 0;
  /// The node's attributes in canonical (ascending-index) order.
  std::vector<uint32_t> attrs;
  /// bindings[i] pins attrs[i] to a key value; nullopt = group-by attr.
  std::vector<std::optional<Coord>> bindings;
  /// Optional interval predicates (BETWEEN lo AND hi, inclusive), parallel
  /// to attrs. Empty vector = no range predicates; a range and an equality
  /// binding on the same attribute are mutually exclusive.
  std::vector<std::optional<std::pair<Coord, Coord>>> ranges;
  /// Which attrs appear in the output grouping, parallel to attrs. When
  /// empty, defaults to "every attr not equality-bound" — which keeps
  /// range-restricted attrs in the output ("totals per month for months
  /// 3..6"). An explicit vector can also collapse a range-restricted attr
  /// (SQL's WHERE x BETWEEN ... with x absent from GROUP BY).
  std::vector<bool> grouped;

  bool IsGrouped(size_t i) const {
    if (!grouped.empty()) return grouped[i];
    return !bindings[i].has_value();
  }

  /// Attributes restricted by equality.
  uint32_t BoundMask() const {
    uint32_t mask = 0;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (bindings[i].has_value()) mask |= (1u << attrs[i]);
    }
    return mask;
  }
  /// Attributes restricted by a range predicate.
  uint32_t RangeMask() const {
    uint32_t mask = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ranges[i].has_value()) mask |= (1u << attrs[i]);
    }
    return mask;
  }
  uint32_t GroupMask() const { return node_mask & ~BoundMask(); }
  size_t NumBound() const {
    size_t n = 0;
    for (const auto& b : bindings) n += b.has_value();
    return n;
  }

  /// The [lo, hi] interval attrs[i] is restricted to (full key space when
  /// unconstrained; degenerate when equality-bound).
  std::pair<Coord, Coord> AttrInterval(size_t i) const {
    if (bindings[i].has_value()) return {*bindings[i], *bindings[i]};
    if (i < ranges.size() && ranges[i].has_value()) return *ranges[i];
    return {1, kCoordMax};
  }
  bool AttrConstrained(size_t i) const {
    return bindings[i].has_value() ||
           (i < ranges.size() && ranges[i].has_value());
  }

  std::string ToString(const CubeSchema& schema) const;
};

/// One output row of a slice query: values of the group-by attributes (in
/// the query's attr order, bound attrs omitted) plus the aggregate.
struct ResultRow {
  std::vector<Coord> group;
  AggValue agg;
};

/// A slice query's answer.
struct QueryResult {
  std::vector<uint32_t> group_attrs;
  std::vector<ResultRow> rows;

  /// Canonical ordering, for comparing answers across engines.
  void SortRows();
  bool SameRowsAs(const QueryResult& other) const;
};

/// Random slice-query generator mirroring the paper's experiment: uniform
/// over the query types of a node (optionally excluding the fully unbound
/// type, whose huge output "dilutes the actual retrieval cost"), with
/// predicate values drawn uniformly from each attribute's key domain.
class SliceQueryGenerator {
 public:
  /// The schema is copied; the generator is safe to outlive the caller's
  /// schema object.
  SliceQueryGenerator(CubeSchema schema, uint64_t seed)
      : schema_(std::move(schema)), rng_(seed) {}

  /// A random query on the node with the given canonical attrs.
  SliceQuery ForNode(const std::vector<uint32_t>& attrs,
                     bool exclude_unbound);

  /// A random range query on the node: each selected predicate becomes a
  /// BETWEEN interval covering ~`range_fraction` of the attribute's
  /// domain (the bounded-range workload of Section 3.1's closing remark).
  SliceQuery ForNodeRange(const std::vector<uint32_t>& attrs,
                          double range_fraction, bool exclude_unbound);

  /// A random query uniform over all (node, type) pairs of the lattice,
  /// optionally skipping the arity-0 node.
  SliceQuery UniformOverLattice(const CubeLattice& lattice,
                                bool exclude_unbound, bool skip_none_node);

 private:
  CubeSchema schema_;
  Rng rng_;
};

}  // namespace cubetree

#endif  // CUBETREE_OLAP_QUERY_MODEL_H_
