#ifndef CUBETREE_OLAP_SELECTION_H_
#define CUBETREE_OLAP_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "cubetree/view_def.h"
#include "olap/lattice.h"

namespace cubetree {

/// A B-tree index candidate/selection: built over the materialized view
/// `view_id`, with search key = the concatenation of `key_attrs` (the
/// paper's I_{a,b,c} notation).
struct IndexDef {
  uint32_t id = 0;
  uint32_t view_id = 0;
  std::vector<uint32_t> key_attrs;

  std::string Name(const CubeSchema& schema) const;
};

/// One greedy pick, for reporting/verification.
struct SelectionPick {
  bool is_index = false;
  uint32_t structure_id = 0;  // View id or index id.
  double benefit = 0.0;
};

/// Output of the greedy selection.
struct SelectionResult {
  std::vector<ViewDef> views;      // In pick order; views[0] is the top view.
  std::vector<IndexDef> indices;   // In pick order.
  std::vector<SelectionPick> picks;
};

struct GreedyOptions {
  /// Total structures to select (views + indices), top view included. The
  /// paper's TPC-D configuration selects 9: 6 views and 3 indices.
  size_t max_structures = 9;
  /// Stop early when the best remaining benefit falls below this.
  double min_benefit = 1.0;
  /// Consider index candidates (permutations of materialized views' attrs).
  bool include_indices = true;
  /// Index candidates are generated only for views of arity <= this bound
  /// (permutation count grows factorially).
  uint8_t max_index_arity = 4;
};

/// The 1-greedy view-and-index selection of [GHRU97] as used by the paper
/// (Section 3): the cost of a slice query is the number of tuples accessed
/// in the tables and indices that answer it; the top view is always
/// materialized (the lattice cannot be answered from summary tables without
/// it, per [HRU96]); each round picks the view or index with the largest
/// total cost reduction over the uniform slice-query workload (one query
/// type per (node, bound-subset) pair — 27 types for the paper's lattice).
///
/// On TPC-D statistics this reproduces the paper's selection:
///   V = {psc, ps, c, s, p, none},  I = {I_csp, I_pcs, I_spc}.
Result<SelectionResult> GreedySelect(const CubeLattice& lattice,
                                     const GreedyOptions& options);

}  // namespace cubetree

#endif  // CUBETREE_OLAP_SELECTION_H_
