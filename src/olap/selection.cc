#include "olap/selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cubetree {

std::string IndexDef::Name(const CubeSchema& schema) const {
  std::string out = "I{";
  for (size_t i = 0; i < key_attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.attr_names[key_attrs[i]];
  }
  out += "}";
  return out;
}

namespace {

/// One slice-query type: lattice node `mask` with bound attrs `bound`.
struct QueryType {
  uint32_t mask = 0;
  uint32_t bound = 0;
};

struct MaterializedView {
  uint32_t mask = 0;
  std::vector<uint32_t> attrs;
  uint64_t rows = 0;
  std::vector<std::vector<uint32_t>> index_keys;  // Selected indices on it.
};

/// Tuples accessed when answering `q` from view `w` using the best
/// available index on `w` (or a scan). Costs are kept as (possibly
/// fractional) expectations rather than clamped to one tuple: the residual
/// differences between deep index prefixes are exactly the tie-breaking
/// signal that makes the greedy prefer an index whose key extends coverage
/// to an un-covered attribute pair.
double CostViaView(const QueryType& q, const MaterializedView& w,
                   const CubeSchema& schema) {
  double best = static_cast<double>(w.rows);  // Full scan.
  for (const auto& key : w.index_keys) {
    double selectivity = 1.0;
    for (uint32_t attr : key) {
      if (!(q.bound & (1u << attr))) break;  // Prefix ends.
      selectivity *= static_cast<double>(schema.attr_domains[attr]);
    }
    best = std::min(best, static_cast<double>(w.rows) / selectivity);
  }
  return best;
}

/// Current best cost of `q` over all materialized views (plus the fact
/// table fallback).
double CurrentCost(const QueryType& q,
                   const std::vector<MaterializedView>& views,
                   const CubeSchema& schema, double fact_rows) {
  double best = fact_rows;
  for (const MaterializedView& w : views) {
    if ((w.mask & q.mask) == q.mask) {
      best = std::min(best, CostViaView(q, w, schema));
    }
  }
  return best;
}

}  // namespace

Result<SelectionResult> GreedySelect(const CubeLattice& lattice,
                                     const GreedyOptions& options) {
  const CubeSchema& schema = lattice.schema();
  if (schema.num_attrs() == 0 || schema.num_attrs() > 16) {
    return Status::InvalidArgument("selection: unsupported attribute count");
  }

  // Enumerate all slice-query types (node, bound subset).
  std::vector<QueryType> types;
  for (size_t i = 0; i < lattice.num_nodes(); ++i) {
    const uint32_t mask = lattice.node(i).mask;
    // All subsets of `mask`.
    uint32_t sub = mask;
    while (true) {
      types.push_back(QueryType{mask, sub});
      if (sub == 0) break;
      sub = (sub - 1) & mask;
    }
  }

  CT_ASSIGN_OR_RETURN(const LatticeNode* top,
                      lattice.NodeForMask(lattice.top_mask()));
  const double fact_rows = static_cast<double>(
      std::max<uint64_t>(top->row_count, 1));

  SelectionResult result;
  std::vector<MaterializedView> materialized;

  auto materialize = [&](const LatticeNode& node) {
    MaterializedView w;
    w.mask = node.mask;
    w.attrs = node.attrs;
    w.rows = std::max<uint64_t>(node.row_count, 1);
    materialized.push_back(std::move(w));
    ViewDef view;
    view.id = node.mask;
    view.attrs = node.attrs;
    result.views.push_back(std::move(view));
  };

  // The top view is always materialized (HRU96 baseline) so every node of
  // the lattice is answerable from a summary table.
  {
    const double benefit =
        static_cast<double>(types.size()) *
        (fact_rows - static_cast<double>(top->row_count));
    materialize(*top);
    result.picks.push_back(SelectionPick{false, top->mask, benefit});
  }

  uint32_t next_index_id = 1;
  while (result.picks.size() < options.max_structures) {
    // Current per-type costs.
    std::vector<double> current(types.size());
    for (size_t t = 0; t < types.size(); ++t) {
      current[t] = CurrentCost(types[t], materialized, schema, fact_rows);
    }

    double best_benefit = 0;
    int best_view = -1;  // Lattice node index.
    int best_index_owner = -1;
    std::vector<uint32_t> best_index_key;

    // View candidates: unmaterialized lattice nodes.
    for (size_t i = 0; i < lattice.num_nodes(); ++i) {
      const LatticeNode& node = lattice.node(i);
      bool already = false;
      for (const auto& w : materialized) already |= (w.mask == node.mask);
      if (already) continue;
      const double rows = static_cast<double>(std::max<uint64_t>(
          node.row_count, 1));
      double benefit = 0;
      for (size_t t = 0; t < types.size(); ++t) {
        if ((node.mask & types[t].mask) == types[t].mask) {
          benefit += std::max(0.0, current[t] - rows);
        }
      }
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best_view = static_cast<int>(i);
        best_index_owner = -1;
      }
    }

    // Index candidates: permutations of each materialized view's attrs.
    if (options.include_indices) {
      for (size_t wi = 0; wi < materialized.size(); ++wi) {
        const MaterializedView& w = materialized[wi];
        if (w.attrs.empty() || w.attrs.size() > options.max_index_arity) {
          continue;
        }
        std::vector<uint32_t> perm = w.attrs;
        std::sort(perm.begin(), perm.end());
        do {
          bool already = false;
          for (const auto& key : w.index_keys) already |= (key == perm);
          if (already) continue;
          double benefit = 0;
          for (size_t t = 0; t < types.size(); ++t) {
            const QueryType& q = types[t];
            if ((w.mask & q.mask) != q.mask) continue;
            double selectivity = 1.0;
            for (uint32_t attr : perm) {
              if (!(q.bound & (1u << attr))) break;
              selectivity *= static_cast<double>(schema.attr_domains[attr]);
            }
            const double cost =
                static_cast<double>(w.rows) / selectivity;
            benefit += std::max(0.0, current[t] - cost);
          }
          if (benefit > best_benefit) {
            best_benefit = benefit;
            best_view = -1;
            best_index_owner = static_cast<int>(wi);
            best_index_key = perm;
          }
        } while (std::next_permutation(perm.begin(), perm.end()));
      }
    }

    if (best_benefit < options.min_benefit) break;

    if (best_view >= 0) {
      const LatticeNode& node = lattice.node(best_view);
      materialize(node);
      result.picks.push_back(SelectionPick{false, node.mask, best_benefit});
    } else if (best_index_owner >= 0) {
      MaterializedView& w = materialized[best_index_owner];
      w.index_keys.push_back(best_index_key);
      IndexDef index;
      index.id = next_index_id++;
      index.view_id = w.mask;
      index.key_attrs = best_index_key;
      result.picks.push_back(SelectionPick{true, index.id, best_benefit});
      result.indices.push_back(std::move(index));
    } else {
      break;
    }
  }
  return result;
}

}  // namespace cubetree
