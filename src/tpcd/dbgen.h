#ifndef CUBETREE_TPCD_DBGEN_H_
#define CUBETREE_TPCD_DBGEN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "cubetree/view_def.h"
#include "olap/cube_builder.h"

namespace cubetree {
namespace tpcd {

/// Generator parameters. scale_factor = 1.0 reproduces the paper's 1 GB
/// experiment (~6M fact rows); benchmarks default to a fraction of that so
/// the suite completes in minutes on one core.
struct TpcdOptions {
  double scale_factor = 0.05;
  uint64_t seed = 19980601;  // SIGMOD '98.
};

/// Table cardinalities at a given scale factor, per the TPC-D ratios.
struct TpcdSizes {
  uint32_t parts = 0;      // 200,000 x SF
  uint32_t suppliers = 0;  // 10,000 x SF
  uint32_t customers = 0;  // 150,000 x SF
  uint32_t orders = 0;     // 1,500,000 x SF; 1..7 lineitems each (avg 4)
};

/// Dimension rows (generated deterministically from the key), used to load
/// the dimension heap tables and to resolve hierarchy attributes.
struct PartRow {
  uint32_t partkey = 0;
  std::string name;
  uint32_t brand = 0;  // 1..25  (part.brand hierarchy level)
  uint32_t type = 0;   // 1..150 (part.type hierarchy level)
  uint32_t size = 0;
  std::string container;
};

struct SupplierRow {
  uint32_t suppkey = 0;
  std::string name;
  std::string address;
  std::string phone;
};

struct CustomerRow {
  uint32_t custkey = 0;
  std::string name;
  std::string address;
  std::string phone;
};

/// The time dimension (the day -> month -> year hierarchy of Section 2.1).
/// The warehouse spans 7 synthetic years of 360 days (12 months x 30
/// days); every order date is a timekey into this dimension, so month and
/// year are functionally determined by it.
struct TimeRow {
  uint32_t timekey = 0;  // 1..kNumTimekeys
  uint32_t day = 0;      // 1..30 within the month
  uint32_t month = 0;    // 1..12
  uint32_t year = 0;     // 1..7
};

inline constexpr uint32_t kDaysPerMonth = 30;
inline constexpr uint32_t kMonthsPerYear = 12;
inline constexpr uint32_t kNumYears = 7;
inline constexpr uint32_t kNumTimekeys =
    kDaysPerMonth * kMonthsPerYear * kNumYears;

/// Grouping-attribute indices of the base (evaluation) schema.
enum BaseAttr : uint32_t {
  kPartkey = 0,
  kSuppkey = 1,
  kCustkey = 2,
};

/// Extra attributes of the extended schema (Section 2.4 example: part and
/// time hierarchies).
enum ExtendedAttr : uint32_t {
  kBrand = 3,
  kType = 4,
  kYear = 5,   // 1..7 (1992..1998)
  kMonth = 6,  // 1..12
};

/// DBGEN-equivalent workload generator. Facts are produced by streaming,
/// deterministic per-order generation: order o has a seeded RNG, a uniform
/// custkey, an order date, and 1..7 lineitems whose partkeys are uniform
/// and whose suppkey follows the TPC-D partkey->supplier association
/// (supplier j of part p is (p + j*(S/4)) mod S + 1). quantity is uniform
/// 1..50. An increment re-opens the stream over a fresh range of orders —
/// the paper's 10% refresh set.
class Generator {
 public:
  explicit Generator(TpcdOptions options);

  const TpcdOptions& options() const { return options_; }
  const TpcdSizes& sizes() const { return sizes_; }

  /// The paper's evaluation schema: {partkey, suppkey, custkey}.
  CubeSchema MakeBaseSchema() const;

  /// The Section 2.4 schema with hierarchy attributes.
  CubeSchema MakeExtendedSchema() const;

  /// Fact provider over the base order range [0, orders).
  std::unique_ptr<FactProvider> BaseFacts(bool extended_attrs = false) const;

  /// Fact provider over an increment of `fraction` x orders fresh orders
  /// (increment 0, 1, ... give disjoint ranges).
  std::unique_ptr<FactProvider> IncrementFacts(
      double fraction, uint32_t increment_number = 0,
      bool extended_attrs = false) const;

  /// Fact provider over the base orders plus the first `increments`
  /// increments — the input of a recompute-from-scratch refresh.
  std::unique_ptr<FactProvider> FactsThroughIncrement(
      double fraction, uint32_t increments,
      bool extended_attrs = false) const;

  /// Exact lineitem counts (computed from the deterministic stream shape).
  uint64_t NumBaseLineitems() const;
  uint64_t NumIncrementLineitems(double fraction,
                                 uint32_t increment_number = 0) const;

  /// Deterministic dimension rows.
  PartRow MakePart(uint32_t partkey) const;
  SupplierRow MakeSupplier(uint32_t suppkey) const;
  CustomerRow MakeCustomer(uint32_t custkey) const;
  static TimeRow MakeTime(uint32_t timekey);

  /// Hierarchy attribute resolution (used for extended-schema facts).
  uint32_t BrandOfPart(uint32_t partkey) const;
  uint32_t TypeOfPart(uint32_t partkey) const;
  static uint32_t MonthOfTime(uint32_t timekey) {
    return MakeTime(timekey).month;
  }
  static uint32_t YearOfTime(uint32_t timekey) {
    return MakeTime(timekey).year;
  }

 private:
  uint64_t LineitemsOfOrder(uint64_t order_index) const;

  TpcdOptions options_;
  TpcdSizes sizes_;
};

}  // namespace tpcd
}  // namespace cubetree

#endif  // CUBETREE_TPCD_DBGEN_H_
