#include "tpcd/dbgen.h"

#include <algorithm>

namespace cubetree {
namespace tpcd {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

const char* const kContainers[] = {"SM CASE", "SM BOX",  "LG CASE",
                                   "LG BOX",  "MED BAG", "JUMBO JAR",
                                   "WRAP PKG", "MED DRUM"};

std::string SyntheticText(const char* prefix, uint32_t key) {
  std::string out = prefix;
  out += "#";
  std::string digits = std::to_string(key);
  while (digits.size() < 9) digits.insert(digits.begin(), '0');
  out += digits;
  return out;
}

std::string SyntheticPhone(uint64_t h) {
  std::string out;
  out += std::to_string(10 + h % 25);
  out += "-";
  out += std::to_string(100 + (h >> 8) % 900);
  out += "-";
  out += std::to_string(100 + (h >> 24) % 900);
  out += "-";
  out += std::to_string(1000 + (h >> 40) % 9000);
  return out;
}

/// Streams the lineitems of orders [begin, end), with deterministic
/// per-order randomness so any order range can be regenerated.
class OrderRangeFactSource : public FactSource {
 public:
  OrderRangeFactSource(const Generator* gen, uint64_t begin, uint64_t end,
                       bool extended)
      : gen_(gen), order_(begin), end_(end), extended_(extended) {}

  Status Next(const FactTuple** tuple) override {
    while (line_ >= lines_in_order_) {
      if (order_ >= end_) {
        *tuple = nullptr;
        return Status::OK();
      }
      StartOrder(order_);
      ++order_;
    }
    EmitLine();
    ++line_;
    *tuple = &tuple_;
    return Status::OK();
  }

 private:
  void StartOrder(uint64_t order_index) {
    const TpcdSizes& sizes = gen_->sizes();
    rng_.Seed(SplitMix64(gen_->options().seed ^
                         (order_index * 0x5851F42D4C957F2DULL + 1)));
    custkey_ = static_cast<Coord>(1 + rng_.Uniform(sizes.customers));
    // The order date is a timekey; month and year derive from it through
    // the time dimension's hierarchy.
    const uint32_t timekey =
        static_cast<uint32_t>(1 + rng_.Uniform(kNumTimekeys));
    year_ = Generator::YearOfTime(timekey);
    month_ = Generator::MonthOfTime(timekey);
    lines_in_order_ = 1 + SplitMix64(gen_->options().seed + order_index) % 7;
    line_ = 0;
  }

  void EmitLine() {
    const TpcdSizes& sizes = gen_->sizes();
    const Coord partkey = static_cast<Coord>(1 + rng_.Uniform(sizes.parts));
    const uint32_t s = std::max<uint32_t>(sizes.suppliers, 4);
    const uint64_t j = rng_.Uniform(4);
    const Coord suppkey = static_cast<Coord>(
        ((partkey + j * (s / 4)) % sizes.suppliers) + 1);
    tuple_.attr_values[kPartkey] = partkey;
    tuple_.attr_values[kSuppkey] = suppkey;
    tuple_.attr_values[kCustkey] = custkey_;
    if (extended_) {
      tuple_.attr_values[kBrand] = gen_->BrandOfPart(partkey);
      tuple_.attr_values[kType] = gen_->TypeOfPart(partkey);
      tuple_.attr_values[kYear] = year_;
      tuple_.attr_values[kMonth] = month_;
    }
    tuple_.measure = static_cast<int64_t>(1 + rng_.Uniform(50));
  }

  const Generator* gen_;
  uint64_t order_;
  uint64_t end_;
  bool extended_;
  Rng rng_;
  Coord custkey_ = 0;
  Coord year_ = 0;
  Coord month_ = 0;
  uint64_t lines_in_order_ = 0;
  uint64_t line_ = 0;
  FactTuple tuple_;
};

class OrderRangeFactProvider : public FactProvider {
 public:
  OrderRangeFactProvider(const Generator* gen, uint64_t begin, uint64_t end,
                         bool extended)
      : gen_(gen), begin_(begin), end_(end), extended_(extended) {}

  Result<std::unique_ptr<FactSource>> Open() override {
    return std::unique_ptr<FactSource>(
        new OrderRangeFactSource(gen_, begin_, end_, extended_));
  }

 private:
  const Generator* gen_;
  uint64_t begin_;
  uint64_t end_;
  bool extended_;
};

}  // namespace

Generator::Generator(TpcdOptions options) : options_(options) {
  const double sf = std::max(options.scale_factor, 1e-5);
  sizes_.parts = std::max<uint32_t>(1, static_cast<uint32_t>(200000 * sf));
  sizes_.suppliers = std::max<uint32_t>(4, static_cast<uint32_t>(10000 * sf));
  sizes_.customers =
      std::max<uint32_t>(1, static_cast<uint32_t>(150000 * sf));
  sizes_.orders = std::max<uint32_t>(1, static_cast<uint32_t>(1500000 * sf));
}

CubeSchema Generator::MakeBaseSchema() const {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {sizes_.parts, sizes_.suppliers, sizes_.customers};
  schema.measure_name = "quantity";
  return schema;
}

CubeSchema Generator::MakeExtendedSchema() const {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey", "brand",
                       "type",    "year",    "month"};
  schema.attr_domains = {sizes_.parts, sizes_.suppliers, sizes_.customers,
                         25,           150,              7,
                         12};
  schema.measure_name = "quantity";
  return schema;
}

std::unique_ptr<FactProvider> Generator::BaseFacts(bool extended_attrs) const {
  return std::make_unique<OrderRangeFactProvider>(this, 0, sizes_.orders,
                                                  extended_attrs);
}

std::unique_ptr<FactProvider> Generator::IncrementFacts(
    double fraction, uint32_t increment_number, bool extended_attrs) const {
  const uint64_t span = std::max<uint64_t>(
      1, static_cast<uint64_t>(sizes_.orders * fraction));
  const uint64_t begin = sizes_.orders + increment_number * span;
  return std::make_unique<OrderRangeFactProvider>(this, begin, begin + span,
                                                  extended_attrs);
}

std::unique_ptr<FactProvider> Generator::FactsThroughIncrement(
    double fraction, uint32_t increments, bool extended_attrs) const {
  const uint64_t span = std::max<uint64_t>(
      1, static_cast<uint64_t>(sizes_.orders * fraction));
  const uint64_t end = sizes_.orders + increments * span;
  return std::make_unique<OrderRangeFactProvider>(this, 0, end,
                                                  extended_attrs);
}

uint64_t Generator::LineitemsOfOrder(uint64_t order_index) const {
  return 1 + SplitMix64(options_.seed + order_index) % 7;
}

uint64_t Generator::NumBaseLineitems() const {
  uint64_t total = 0;
  for (uint64_t o = 0; o < sizes_.orders; ++o) total += LineitemsOfOrder(o);
  return total;
}

uint64_t Generator::NumIncrementLineitems(double fraction,
                                          uint32_t increment_number) const {
  const uint64_t span = std::max<uint64_t>(
      1, static_cast<uint64_t>(sizes_.orders * fraction));
  const uint64_t begin = sizes_.orders + increment_number * span;
  uint64_t total = 0;
  for (uint64_t o = begin; o < begin + span; ++o) {
    total += LineitemsOfOrder(o);
  }
  return total;
}

PartRow Generator::MakePart(uint32_t partkey) const {
  PartRow row;
  row.partkey = partkey;
  row.name = SyntheticText("Part", partkey);
  row.brand = BrandOfPart(partkey);
  row.type = TypeOfPart(partkey);
  const uint64_t h = SplitMix64(options_.seed * 3 + partkey);
  row.size = static_cast<uint32_t>(1 + h % 50);
  row.container = kContainers[(h >> 16) % 8];
  return row;
}

SupplierRow Generator::MakeSupplier(uint32_t suppkey) const {
  SupplierRow row;
  row.suppkey = suppkey;
  row.name = SyntheticText("Supplier", suppkey);
  const uint64_t h = SplitMix64(options_.seed * 5 + suppkey);
  row.address = SyntheticText("Addr", static_cast<uint32_t>(h % 1000000));
  row.phone = SyntheticPhone(h);
  return row;
}

CustomerRow Generator::MakeCustomer(uint32_t custkey) const {
  CustomerRow row;
  row.custkey = custkey;
  row.name = SyntheticText("Customer", custkey);
  const uint64_t h = SplitMix64(options_.seed * 7 + custkey);
  row.address = SyntheticText("Addr", static_cast<uint32_t>(h % 1000000));
  row.phone = SyntheticPhone(h);
  return row;
}

TimeRow Generator::MakeTime(uint32_t timekey) {
  TimeRow row;
  row.timekey = timekey;
  const uint32_t ordinal = timekey - 1;  // 0-based day index.
  row.day = ordinal % kDaysPerMonth + 1;
  row.month = (ordinal / kDaysPerMonth) % kMonthsPerYear + 1;
  row.year = ordinal / (kDaysPerMonth * kMonthsPerYear) + 1;
  return row;
}

uint32_t Generator::BrandOfPart(uint32_t partkey) const {
  return static_cast<uint32_t>(
      1 + SplitMix64(options_.seed * 11 + partkey) % 25);
}

uint32_t Generator::TypeOfPart(uint32_t partkey) const {
  return static_cast<uint32_t>(
      1 + SplitMix64(options_.seed * 13 + partkey) % 150);
}

}  // namespace tpcd
}  // namespace cubetree
